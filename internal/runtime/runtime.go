// Package runtime executes a query graph in real time with one goroutine
// per operator and channels as arcs — the natural Go embodiment of the
// paper's execution model. Where the simulation engine discovers ETS demand
// by backtracking, the concurrent engine propagates an explicit *demand
// signal* upstream: an idle-waiting operator that holds data but cannot run
// sends a demand toward the source feeding its blocking input; the source
// answers with an on-demand ETS punctuation (subject to the same per-kind
// estimator rules). Demand signals are hints — they are sent without
// blocking and dropped when a node is busy, which keeps the engine
// deadlock-free (data flows strictly downstream, demand strictly upstream,
// and only data sends may block).
//
// # Batched data plane
//
// Arcs carry batches ([]*tuple.Tuple) rather than single tuples, amortizing
// the channel synchronization that otherwise dominates the hot path. A node
// accumulates up to Options.BatchSize output tuples per arc before sending;
// batch slices are recycled through a sync.Pool so the steady state is
// allocation-free. Batching must not reintroduce the latency the paper's
// on-demand ETS design eliminates, so four flush triggers bound how long a
// tuple can sit in a pending batch:
//
//   - punctuation: a batch is flushed the moment an ETS (or EOS) is emitted
//     into it — a bound that waits is a bound that lies, and the Figure-7
//     on-demand latency result depends on punctuation arriving immediately;
//   - demand: a demand signal from downstream flushes pending output before
//     any ETS machinery runs — the tuples downstream idle-waits for may
//     already be here;
//   - idle: a node flushes everything pending before it blocks, so batches
//     never outlive their producer's attention;
//   - delay: while a node stays busy, batches older than
//     Options.MaxBatchDelay are flushed so continuous low-yield operators
//     still bound latency.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/tuple"
)

// DefaultBatchSize is the per-arc batch capacity used when Options.BatchSize
// is zero.
const DefaultBatchSize = 64

// DefaultMaxBatchDelay bounds how long a busy node may hold a partial batch
// when Options.MaxBatchDelay is zero.
const DefaultMaxBatchDelay = 500 * time.Microsecond

// Options configures a runtime engine.
type Options struct {
	// OnDemandETS enables demand-driven ETS generation at sources.
	OnDemandETS bool
	// ChannelDepth sets per-arc channel capacity in batches (default 256).
	ChannelDepth int
	// BatchSize caps the tuples accumulated per output arc before the
	// batch is sent downstream (default DefaultBatchSize). 1 restores
	// per-tuple sends — the unbatched baseline.
	BatchSize int
	// MaxBatchDelay bounds how long a continuously-busy node may hold a
	// partial batch (default DefaultMaxBatchDelay). Idle nodes always
	// flush before blocking, so the bound only matters under sustained
	// load.
	MaxBatchDelay time.Duration
	// Recycle returns sink-consumed tuples and absorbed punctuation to the
	// tuple pool (tuple.Put). It requires that sink callbacks do not
	// retain tuples beyond the call; it is ignored (stays off) when the
	// graph has fan-out, where a tuple pointer is shared across arcs and
	// single ownership cannot be proven. Splitters are exempt: they route
	// each data tuple to exactly one arc and broadcast punctuation as
	// fresh copies, so their fan-out preserves single ownership.
	Recycle bool
	// Columnar switches arcs into columnar-capable consumers (operators
	// implementing ops.ColOperator: selections, projections, splitters,
	// aggregates) to carrying tuple.ColBatch — per-attribute typed columns
	// with punctuation as batch metadata — instead of []*tuple.Tuple. Row
	// operators (sources, IWP joins/unions, sinks) are fed through lossless
	// boundary conversion, so any graph runs under either setting with
	// identical results. The four batch flush rules (punct / demand / idle
	// / delay) apply to columnar pending batches unchanged, so ETS latency
	// is preserved.
	Columnar bool
	// Shards, when ≥ 2, applies the partition rewrite before the graph is
	// built: every partitionable operator (ops.Partitionable — hash/equi
	// joins, grouped aggregates, TSM unions) is replicated into Shards
	// hash-partitioned replicas behind a splitter per input and a
	// min-watermark merge, each replica running on its own goroutine with
	// its own state slice, pending batches, and recycle magazine.
	Shards int
	// Now supplies the clock; defaults to wall time in µs since engine
	// start.
	Now func() tuple.Time
	// Metrics, when non-nil, is the registry the engine's per-node
	// instruments are registered into at build time; nil gives the engine
	// its own registry (reachable via Engine.Registry). Sharing one
	// registry across engines gives a single scrape surface.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives the engine's structured events
	// (idle-waiting transitions, on-demand ETS, demand signals, watermark
	// advances, batch flushes). nil disables tracing at the cost of one
	// pointer check per event site.
	Trace *metrics.Tracer
	// Spans, when non-nil, collects punctuation-propagation spans: every
	// punctuation generated inside the engine (on-demand ETS, forced ETS)
	// or injected with a pre-assigned trace ID (a networked client)
	// records gen/enqueue/dequeue/apply/sink events so its source→sink
	// journey can be reconstructed (obs.Collector.Timelines). Recording
	// happens only on punctuation paths — never per data tuple — so the
	// cost is a few events per ETS; nil disables collection at one
	// pointer check per punctuation.
	Spans *obs.Collector

	// MaxRestarts caps how many times a panicked node goroutine is
	// restarted by its supervisor before the engine fails cleanly
	// (Engine.Err / an errored Wait). 0 means DefaultMaxRestarts; a
	// negative value disables restarts — the first panic fails the engine.
	MaxRestarts int
	// RestartBackoff is the base supervisor backoff, doubled per
	// consecutive restart of the same node (capped at 256× the base).
	// 0 means DefaultRestartBackoff.
	RestartBackoff time.Duration
	// SourceTimeout, when > 0, arms the source-liveness watchdog: a
	// source silent for this long while some operator idle-waits gets a
	// skew-bounded ETS forced into it (at most one per timeout window),
	// so a dead external feed cannot stall IWP operators forever.
	SourceTimeout time.Duration
	// SourceDeadAfter, when > 0, is the second watchdog threshold: a
	// source silent this long is declared dead and its stream closed
	// (EOS downstream) so watermarks keep advancing. If tuples reappear
	// the source revives; its tuples ride the relaxed-more / late-drop
	// paths and are counted as late.
	SourceDeadAfter time.Duration
	// MaxQueueLen, when > 0, bounds each input queue's buffered *data*
	// tuples. The default policy is backpressure: a node over its bound
	// stops draining its inbox channel, the channel fills, and upstream
	// emitTo / Ingest block. With Shed, the node instead drops its oldest
	// buffered data tuples (punctuation is never shed) and counts them.
	MaxQueueLen int
	// Shed switches the MaxQueueLen policy from backpressure to
	// drop-oldest load shedding for this graph.
	Shed bool
	// Fault, when non-nil, is the chaos injector probed on the hot path
	// (panic-at-node at the top of each scheduling iteration, tuple-drop
	// at source ingest). nil costs one pointer check per iteration.
	Fault *fault.Injector
	// Adaptive, when non-nil, carries the knobs an adaptive controller
	// (internal/adapt) reads when attached to this engine. The engine
	// itself only stores it — setting Adaptive without attaching a
	// controller changes nothing.
	Adaptive *AdaptiveOptions
}

// AdaptiveOptions tunes the adaptive controller (internal/adapt). The zero
// value enables every actuator with the defaults below; the No* fields
// disable individual actuators.
type AdaptiveOptions struct {
	// Interval is the controller tick (observe→decide cadence). Default
	// DefaultAdaptInterval.
	Interval time.Duration
	// NoBatchTune disables per-node batch-size hill climbing.
	NoBatchTune bool
	// NoRebalance disables splitter bucket re-assignment.
	NoRebalance bool
	// NoJoinReorder disables multiway-join probe reordering.
	NoJoinReorder bool
	// MinBatch/MaxBatch bound the batch-size hill climb (defaults 1 and
	// DefaultAdaptMaxBatch).
	MinBatch, MaxBatch int
	// TargetP95 is the latency guard: while the observed p95 (from the
	// Latency reservoir) exceeds it, the tuner shrinks batches instead of
	// growing them. 0 disables the guard.
	TargetP95 time.Duration
	// Latency, when non-nil, is the sink-observed latency reservoir the
	// guard reads — typically the embedder's existing end-to-end latency
	// instrument.
	Latency *metrics.Reservoir
	// SkewThreshold is the partition.Skew level above which a rebalance is
	// considered (default 0.25).
	SkewThreshold float64
	// RebalanceMinInterval is the cool-down between rebalances of the same
	// operator (default 20× Interval).
	RebalanceMinInterval time.Duration
	// BarrierLead is added to the splitters' max observed event timestamp
	// when picking a retarget barrier, so the fence sits in the near
	// future of event time (default: one tick's worth of observed
	// watermark advance, minimum 1).
	BarrierLead tuple.Time
}

// DefaultAdaptInterval is the controller tick when Interval is zero.
const DefaultAdaptInterval = 10 * time.Millisecond

// DefaultAdaptMaxBatch caps batch-size hill climbing when MaxBatch is zero.
const DefaultAdaptMaxBatch = 1024

// Reconfig is one punctuation-aligned reconfiguration action. The controller
// publishes it with Engine.Reconfigure; the node's own goroutine applies it
// at the next boundary where the node is quiescent — its last emission was a
// punctuation and nothing is pending on its out arcs — so a reconfiguration
// can never land between a batch and the punctuation that bounds it.
type Reconfig struct {
	// BatchSize, when > 0, becomes the node's per-arc batch capacity.
	BatchSize int
	// MaxBatchDelay, when > 0, becomes the node's stale-batch flush bound.
	MaxBatchDelay time.Duration
	// Apply, when non-nil, runs on the node's goroutine at the boundary
	// with the node's operator — the hook probe-order swaps ride on.
	Apply func(op ops.Operator)
}

// DefaultMaxRestarts is the per-node restart budget when Options.MaxRestarts
// is zero.
const DefaultMaxRestarts = 8

// DefaultRestartBackoff is the base supervisor backoff when
// Options.RestartBackoff is zero.
const DefaultRestartBackoff = time.Millisecond

// Engine runs one query graph concurrently.
type Engine struct {
	g    *graph.Graph
	opts Options
	now  func() tuple.Time
	plan *partition.Plan

	batchSize int
	maxDelay  time.Duration
	pool      *tuple.BatchPool
	recycle   bool
	columnar  bool

	nodes    []*node
	srcNode  map[*ops.Source]*node
	srcNodes []*node // nodes wrapping a source, watchdog iteration order
	wg       sync.WaitGroup
	started  bool
	stop     chan struct{}
	stopOnce sync.Once
	mu       sync.Mutex

	// Supervision / fault tolerance.
	maxRestarts int
	backoff     time.Duration
	maxQueue    int
	shed        bool
	fault       *fault.Injector
	errMu       sync.Mutex
	err         error
	activeNodes atomic.Int64

	etsGenerated atomic.Uint64
	batchesSent  atomic.Uint64
	tuplesSent   atomic.Uint64
	forcedETS    atomic.Uint64
	tuplesShed   atomic.Uint64
	lateTuples   atomic.Uint64
	deadSources  atomic.Int64

	reg     *metrics.Registry
	trace   *metrics.Tracer
	spans   *obs.Collector
	startTs atomic.Int64 // engine clock at Start, µs; -1 before

	// Checkpointing (see ckpt.go). ckptMu serializes Checkpoint calls;
	// ckptCur is the in-flight collection (nil when none) that node
	// goroutines report into from their barrier callbacks.
	ckptMu     sync.Mutex
	ckptCur    atomic.Pointer[ckptCollect]
	ckptTotal  atomic.Uint64
	ckptFailed atomic.Uint64
	ckptBytes  atomic.Uint64
	ckptLastUs atomic.Int64 // engine clock when the last checkpoint completed
	ckptDur    *metrics.Reservoir
}

// portBatch is one arc delivery: a single tuple (the Ingest fast path, no
// slice involved), a pooled row batch whose slice the receiver returns to
// the engine's BatchPool, or — on columnar arcs — a ColBatch whose
// ownership transfers to the receiver.
type portBatch struct {
	port int
	one  *tuple.Tuple
	many []*tuple.Tuple
	col  *tuple.ColBatch
}

type node struct {
	gn   *graph.Node
	name string
	obs  *nodeObs
	in   chan portBatch // fan-in of all input arcs
	dem  chan struct{}  // demand signals from downstream
	ctl  chan ctlKind   // watchdog control signals; non-nil for sources only

	outs     []*node // per out-arc consumer
	outPorts []int

	eosSeen []bool
	ins     []*buffer.Queue

	// Pending output batches, one per out arc. Owned exclusively by the
	// node's goroutine. Arcs into columnar-capable consumers accumulate in
	// colPend instead (colArc[i] picks the side); pendCount and the flush
	// rules cover both.
	pend      [][]*tuple.Tuple
	colPend   []*tuple.ColBatch
	colArc    []bool
	colMode   bool // operator implements ops.ColOperator and Columnar is on
	pendCount int
	pendSince time.Time // when pendCount last left zero

	// Per-node data-plane tunables, initialized from the engine-wide
	// options and re-written only through the reconfiguration protocol.
	// Atomics because scrapers (gauges, the controller) read them while
	// the owning goroutine applies updates.
	batchSize  atomic.Int64
	maxDelayNs atomic.Int64

	// reconf is the pending reconfiguration (last writer wins; the
	// controller coalesces). The node goroutine consumes it only at a
	// punctuation boundary with sincePunct == 0 and pendCount == 0.
	reconf atomic.Pointer[Reconfig]
	// lastInTrace is the trace ID of the last traced punctuation delivered
	// to this node; punctuation the operator emits with no trace of its
	// own inherits it (best-effort causal attribution — exact whenever the
	// operator reacts to one bound at a time, which the punct-flush rule
	// makes the overwhelmingly common case). Goroutine-owned.
	lastInTrace uint64
	// idleBlockedOn is the input port charged for the open idle spell (-1
	// when none); set by enterIdle, consumed by exitIdle. Goroutine-owned.
	idleBlockedOn int
	// punctBoundary is set by notePunctOut* and cleared before each Exec
	// step: "this step emitted a punctuation". sincePunct counts data
	// tuples emitted since the last punctuation — zero means every emitted
	// tuple is bounded and the node is quiescent. Both goroutine-owned.
	punctBoundary bool
	sincePunct    int

	// mag is the node's tuple magazine: recycling (ctx.Release) and the
	// columnar boundary conversion draw from it. Owned by the node
	// goroutine (one at a time, supervised restarts included).
	mag tuple.Magazine

	// srcDone records that a source node has ingested EOS; goroutine-owned
	// (it lives on the node, not the goroutine stack, so a supervised
	// restart does not forget it).
	srcDone bool
	// restarts is the supervisor's consumed-budget counter (supervisor
	// goroutine only).
	restarts int

	// Watchdog state: lastIn is the engine clock (µs) of the last arrival
	// at a source node; lastForce the clock of the last forced ETS; dead
	// whether the watchdog has declared the source dead; done whether the
	// node goroutine has exited for good.
	lastIn    atomic.Int64
	lastForce atomic.Int64
	dead      atomic.Bool
	done      atomic.Bool
}

// New builds a runtime engine over a validated graph. With Options.Shards
// ≥ 2 the graph is first expanded by the partition rewrite; the input graph
// is consumed either way.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	g, plan := partition.Rewrite(g, opts.Shards)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	depth := opts.ChannelDepth
	if depth <= 0 {
		depth = 256
	}
	e := &Engine{g: g, opts: opts, plan: plan, stop: make(chan struct{})}
	e.reg = opts.Metrics
	if e.reg == nil {
		e.reg = metrics.NewRegistry()
	}
	e.trace = opts.Trace
	e.spans = opts.Spans
	e.startTs.Store(-1)
	e.maxRestarts = opts.MaxRestarts
	if e.maxRestarts == 0 {
		e.maxRestarts = DefaultMaxRestarts
	} else if e.maxRestarts < 0 {
		e.maxRestarts = 0 // no restarts: the first panic fails the engine
	}
	e.backoff = opts.RestartBackoff
	if e.backoff <= 0 {
		e.backoff = DefaultRestartBackoff
	}
	e.maxQueue = opts.MaxQueueLen
	e.shed = opts.Shed
	e.fault = opts.Fault
	e.batchSize = opts.BatchSize
	if e.batchSize <= 0 {
		e.batchSize = DefaultBatchSize
	}
	e.maxDelay = opts.MaxBatchDelay
	if e.maxDelay <= 0 {
		e.maxDelay = DefaultMaxBatchDelay
	}
	e.pool = tuple.NewBatchPool(e.batchSize)
	if opts.Now != nil {
		e.now = opts.Now
	} else {
		start := time.Now()
		e.now = func() tuple.Time { return tuple.FromDuration(time.Since(start)) }
	}
	// Tuple recycling is sound only when every tuple pointer lives on at
	// most one arc at a time: fan-out shares pointers across arcs. A
	// splitter's fan-out is routing, not broadcast — each data tuple goes
	// to exactly one shard arc and punctuation is copied per arc — so it
	// keeps single ownership and recycling stays on.
	e.recycle = opts.Recycle
	for _, gn := range g.Nodes() {
		if _, isSplit := gn.Op.(*ops.Split); isSplit {
			continue
		}
		if len(gn.Out) > 1 {
			e.recycle = false
		}
	}
	e.nodes = make([]*node, g.Len())
	e.srcNode = make(map[*ops.Source]*node)
	for _, gn := range g.Nodes() {
		n := &node{
			gn:      gn,
			name:    gn.Op.Name(),
			in:      make(chan portBatch, depth),
			dem:     make(chan struct{}, 1),
			eosSeen: make([]bool, gn.Op.NumInputs()),
		}
		n.idleBlockedOn = -1
		n.ins = make([]*buffer.Queue, gn.Op.NumInputs())
		for i := range n.ins {
			n.ins[i] = buffer.New(fmt.Sprintf("%s.in%d", gn.Op.Name(), i))
		}
		n.lastIn.Store(-1)
		n.batchSize.Store(int64(e.batchSize))
		n.maxDelayNs.Store(int64(e.maxDelay))
		e.nodes[gn.ID] = n
		if s := gn.Source(); s != nil {
			n.ctl = make(chan ctlKind, 4)
			e.srcNode[s] = n
			e.srcNodes = append(e.srcNodes, n)
		}
	}
	// Columnar mode: a node whose operator has a columnar fast path
	// consumes ColBatch deliveries; every arc into such a node carries
	// columnar batches, every other arc stays on rows with conversion at
	// the producer.
	e.columnar = opts.Columnar
	if e.columnar {
		for _, n := range e.nodes {
			if _, ok := n.gn.Op.(ops.ColOperator); ok {
				n.colMode = true
			}
		}
	}
	for _, gn := range g.Nodes() {
		n := e.nodes[gn.ID]
		for _, a := range gn.Out {
			n.outs = append(n.outs, e.nodes[a.To])
			n.outPorts = append(n.outPorts, a.Port)
		}
		n.pend = make([][]*tuple.Tuple, len(n.outs))
		n.colPend = make([]*tuple.ColBatch, len(n.outs))
		n.colArc = make([]bool, len(n.outs))
		for i, c := range n.outs {
			n.colArc[i] = e.columnar && c.colMode
		}
	}
	e.instrument()
	return e, nil
}

// ETSGenerated reports the number of demand-driven ETS punctuations emitted.
func (e *Engine) ETSGenerated() uint64 { return e.etsGenerated.Load() }

// BatchesSent reports the number of arc deliveries (batch sends) performed;
// TuplesSent / BatchesSent is the achieved batching factor.
func (e *Engine) BatchesSent() uint64 { return e.batchesSent.Load() }

// TuplesSent reports the number of tuples moved across arcs.
func (e *Engine) TuplesSent() uint64 { return e.tuplesSent.Load() }

// ShardPlan reports how the partition rewrite expanded the graph, or nil
// when Options.Shards < 2 or nothing was partitionable.
func (e *Engine) ShardPlan() *partition.Plan { return e.plan }

// ShardTuples rolls up the per-shard routed-tuple counters of every splitter
// in the plan into one vector (index = shard), the engine-level view of
// partition balance. It returns nil for an unsharded engine and may be read
// while the engine runs.
func (e *Engine) ShardTuples() []uint64 {
	if e.plan == nil {
		return nil
	}
	var dst []uint64
	for _, sh := range e.plan.Ops {
		for _, id := range sh.Splitters {
			if s, ok := e.g.Node(id).Op.(*ops.Split); ok {
				dst = s.Routed().AddTo(dst)
			}
		}
	}
	return dst
}

// Start launches one supervised goroutine per node, plus the source-liveness
// watchdog when Options.SourceTimeout is set.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	now := int64(e.now())
	e.startTs.Store(now)
	for _, n := range e.srcNodes {
		n.lastIn.Store(now) // a source is "live" until it outlasts its deadline
		n.lastForce.Store(now)
	}
	e.activeNodes.Store(int64(len(e.nodes)))
	for _, n := range e.nodes {
		e.wg.Add(1)
		go e.supervise(n)
	}
	if e.opts.SourceTimeout > 0 && len(e.srcNodes) > 0 {
		e.wg.Add(1)
		go e.watchdog()
	}
}

// Ingest delivers a raw tuple to the given source node. Timestamping
// happens inside the source's goroutine (serialized with on-demand ETS
// generation): stamping at the call site would race with ETS generation —
// an in-flight tuple stamped before an ETS but delivered after it would
// break the arc's timestamp order. Safe for concurrent use.
// It blocks when the source's inbox channel is full (backpressure); if the
// engine stops or fails while blocked, the tuple is dropped instead of
// wedging the producer.
func (e *Engine) Ingest(src *ops.Source, raw *tuple.Tuple) {
	n := e.srcNode[src]
	if n == nil {
		panic("runtime: Ingest on a source not in this graph")
	}
	select {
	case n.in <- portBatch{port: 0, one: raw}:
	case <-e.stop:
	}
}

// IngestBatch delivers a batch of raw tuples to the given source node in one
// channel operation — the producer-side analogue of arc batching. The slice
// is copied into a pooled batch; the caller keeps ownership of raws (but not
// of the tuples, which now belong to the stream). Safe for concurrent use.
func (e *Engine) IngestBatch(src *ops.Source, raws []*tuple.Tuple) {
	if len(raws) == 0 {
		return
	}
	n := e.srcNode[src]
	if n == nil {
		panic("runtime: IngestBatch on a source not in this graph")
	}
	b := append(e.pool.Get(), raws...)
	select {
	case n.in <- portBatch{port: 0, many: b}:
	case <-e.stop:
		e.pool.Put(b)
	}
}

// CloseStream sends end-of-stream into the named source; once every source
// is closed, the graph drains and Wait returns.
func (e *Engine) CloseStream(src *ops.Source) {
	e.Ingest(src, tuple.EOS())
}

// Wait blocks until every node goroutine has exited (all streams closed and
// drained, or the engine stopped/failed). It returns Err(): nil for a clean
// drain or user Stop, the failure for an engine that exceeded a node's
// restart budget.
func (e *Engine) Wait() error {
	e.wg.Wait()
	return e.Err()
}

// Err reports the failure that stopped the engine, or nil while it is
// healthy (including after a clean drain or a user Stop). Safe to call at
// any time.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// fail records the first fatal error and stops the engine. Later calls keep
// the original cause.
func (e *Engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.Stop()
}

// Stop terminates all node goroutines without draining. Prefer CloseStream
// on every source followed by Wait for a clean shutdown; Stop is for
// abandoning a continuous query. It is idempotent and safe to call from any
// number of goroutines, concurrently with Wait and CloseStream.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
}

// flushArc sends out arc i's pending batch downstream.
func (e *Engine) flushArc(n *node, i int) {
	if n.colArc[i] {
		e.flushColArc(n, i)
		return
	}
	b := n.pend[i]
	if len(b) == 0 {
		return
	}
	n.pend[i] = nil
	n.pendCount -= len(b)
	e.batchesSent.Add(1)
	e.tuplesSent.Add(uint64(len(b)))
	n.obs.batchesOut.Inc()
	n.obs.tuplesOut.Add(uint64(len(b)))
	if e.trace != nil {
		e.trace.Emit(metrics.EvBatchFlush, n.name, e.now(), int64(len(b)))
	}
	select {
	case n.outs[i].in <- portBatch{port: n.outPorts[i], many: b}:
	case <-e.stop:
		// The engine is stopping; the consumer may already have exited, so
		// a plain send could wedge this node forever. Abandon the batch.
		e.pool.Put(b[:0])
	}
}

// flushPending sends every non-empty pending batch downstream.
func (e *Engine) flushPending(n *node) {
	if n.pendCount == 0 {
		return
	}
	for i := range n.pend {
		e.flushArc(n, i)
	}
}

// emit appends t to every out arc's pending batch, applying the flush rules:
// punctuation flushes immediately, full batches flush their arc. On columnar
// arcs the tuple is decomposed into the arc's pending ColBatch (punctuation
// becomes a metadata mark); a tuple copied into columns on every arc is no
// longer referenced anywhere and is recycled.
func (e *Engine) emit(n *node, t *tuple.Tuple) {
	if len(n.outs) == 0 {
		return
	}
	if n.pendCount == 0 {
		n.pendSince = time.Now()
	}
	punct := t.IsPunct()
	if punct {
		e.stampPunctTrace(n, t)
	}
	bs := int(n.batchSize.Load())
	shared := false // t's pointer stored on at least one row arc
	for i := range n.outs {
		if n.colArc[i] {
			e.colAppendTuple(n, i, t)
			continue
		}
		shared = true
		b := n.pend[i]
		if b == nil {
			b = e.pool.Get()
		}
		b = append(b, t)
		n.pend[i] = b
		n.pendCount++
		if punct {
			if e.spans != nil && t.Trace != 0 {
				e.spans.Record(t.Trace, n.outs[i].name, obs.PhaseEnqueue, t.Ts)
			}
		} else if len(b) >= bs {
			e.flushArc(n, i)
		}
	}
	if punct {
		e.notePunctOut(n, t)
		// An ETS that waits in a batch delays exactly the reactivation
		// it exists to provide (and EOS gates termination): flush now.
		e.flushPending(n)
	} else {
		n.sincePunct++
	}
	if !shared && e.recycle {
		n.mag.Put(t) // fully copied into columnar batches
	}
}

// appendArc appends t to out arc i's row pending batch, applying the
// per-arc flush rules. note controls punctuation accounting (false when the
// caller already accounted the punct, e.g. a columnar batch being converted
// after its marks were counted).
func (e *Engine) appendArc(n *node, i int, t *tuple.Tuple, note bool) {
	if n.pendCount == 0 {
		n.pendSince = time.Now()
	}
	b := n.pend[i]
	if b == nil {
		b = e.pool.Get()
	}
	b = append(b, t)
	n.pend[i] = b
	n.pendCount++
	if t.IsPunct() {
		if note {
			e.stampPunctTrace(n, t)
			e.notePunctOut(n, t)
		}
		if e.spans != nil && t.Trace != 0 {
			e.spans.Record(t.Trace, n.outs[i].name, obs.PhaseEnqueue, t.Ts)
		}
		e.flushArc(n, i)
	} else {
		n.sincePunct++
		if len(b) >= int(n.batchSize.Load()) {
			e.flushArc(n, i)
		}
	}
}

// emitTo appends t to out arc i's pending batch only — the routed-emit path
// splitters use. The punctuation flush rule applies per arc, preserving the
// invariant that a punct (EOS included) is always its batch's last element.
func (e *Engine) emitTo(n *node, i int, t *tuple.Tuple) {
	if n.colArc[i] {
		if n.pendCount == 0 {
			n.pendSince = time.Now()
		}
		punct := t.IsPunct()
		if punct {
			e.stampPunctTrace(n, t)
		}
		e.colAppendTuple(n, i, t)
		if punct {
			e.notePunctOut(n, t)
			e.flushArc(n, i)
		} else {
			n.sincePunct++
		}
		if e.recycle {
			n.mag.Put(t)
		}
		return
	}
	e.appendArc(n, i, t, true)
}

// runNode is the per-operator scheduling loop. It is (re)entered by the
// node's supervisor: a panic anywhere inside is recovered there and the loop
// restarted, so all state that must survive a restart lives on the node (or
// the engine), never on this stack.
func (e *Engine) runNode(n *node) {
	op := n.gn.Op
	src := n.gn.Source()

	ctx := &ops.Ctx{
		Ins:    n.ins,
		Emit:   func(t *tuple.Tuple) { e.emit(n, t) },
		EmitTo: func(i int, t *tuple.Tuple) { e.emitTo(n, i, t) },
		Now:    e.now,
	}
	ctx.OnBarrier = func(id uint64, bound tuple.Time) { e.onBarrier(n, id, bound) }
	if e.recycle {
		// Each node goroutine recycles through its own magazine so the
		// per-tuple release costs a stack push, not a shared-pool access.
		// The magazine lives on the node (not this stack) because boundary
		// row⇄column conversion draws from it too and state must survive a
		// supervisor restart.
		ctx.Release = n.mag.Put
	}
	colCtx := &ops.ColCtx{
		EmitCol:   func(b *tuple.ColBatch) { e.emitCol(n, b) },
		EmitColTo: func(i int, b *tuple.ColBatch) { e.emitColTo(n, i, b) },
		Now:       e.now,
		FreeCol:   tuple.PutColBatch,
		OnBarrier: ctx.OnBarrier,
	}
	if src != nil {
		// Source nodes pull from their inbox; route the engine's fan-in
		// channel into it.
		ctx.Ins = nil
	}

	deliverOne := func(port int, t *tuple.Tuple) {
		n.obs.tuplesIn.Inc()
		if t.IsPunct() {
			e.notePunctArrival(n, port, t.Ts, t.Trace)
		} else if src == nil {
			if wm := n.obs.wmIn.Load(); wm > int64(tuple.MinTime) && int64(t.Ts) < wm {
				e.countLate(n, 1)
			}
		}
		if src != nil {
			e.noteSourceActivity(n)
			if t.IsEOS() {
				n.srcDone = true
			}
			if t.IsPunct() {
				src.Offer(t)
			} else if e.fault.DropTuple(n.name) {
				// Chaos: the tuple is lost before entering the stream.
				if ctx.Release != nil {
					ctx.Release(t)
				}
			} else {
				src.Ingest(t, e.now())
			}
			return
		}
		n.ins[port].Push(t)
		if t.IsEOS() {
			n.eosSeen[port] = true
		}
		e.shedOverflow(n, ctx)
	}
	deliver := func(pb portBatch) {
		if pb.col != nil {
			e.deliverCol(n, ctx, colCtx, pb)
			return
		}
		if pb.one != nil {
			deliverOne(pb.port, pb.one)
			return
		}
		n.obs.tuplesIn.Add(uint64(len(pb.many)))
		// Late accounting must use the input watermark as of *before* this
		// delivery: a batch's own trailing punctuation bounds future
		// batches, not the data travelling ahead of it in the same batch.
		wmPre := n.obs.wmIn.Load()
		// Punctuation flushes its batch when emitted, so a punct can only
		// be a batch's last element — one check accounts the whole batch.
		last := pb.many[len(pb.many)-1]
		if last.IsPunct() {
			e.notePunctArrival(n, pb.port, last.Ts, last.Trace)
		}
		if src != nil {
			e.noteSourceActivity(n)
			// One clock read for the whole batch: the tuples arrived in the
			// same channel delivery, so they share an arrival instant.
			now := e.now()
			for _, t := range pb.many {
				if t.IsPunct() {
					if t.IsEOS() {
						n.srcDone = true
					}
					src.Offer(t)
				} else if e.fault.DropTuple(n.name) {
					if ctx.Release != nil {
						ctx.Release(t)
					}
				} else {
					src.Ingest(t, now)
				}
			}
		} else {
			if wmPre > int64(tuple.MinTime) {
				late := 0
				for _, t := range pb.many {
					if !t.IsPunct() && int64(t.Ts) < wmPre {
						late++
					}
				}
				if late > 0 {
					e.countLate(n, late)
				}
			}
			n.ins[pb.port].PushAll(pb.many)
			// Punctuation flushes its batch the moment it is emitted, so a
			// punct — EOS included — can only be a batch's last element.
			if last.IsEOS() {
				n.eosSeen[pb.port] = true
			}
		}
		e.pool.Put(pb.many)
		e.shedOverflow(n, ctx)
	}
	allEOS := func() bool {
		if src != nil {
			return false // sources end via their own EOS ingest
		}
		for _, s := range n.eosSeen {
			if !s {
				return false
			}
		}
		return true
	}
	drained := func() bool {
		if src != nil {
			return false
		}
		for _, q := range n.ins {
			if !q.Empty() {
				return false
			}
		}
		return true
	}

	for {
		// Chaos probe: a clean failure point where the operator's state is
		// consistent, so injected panics exercise the supervisor.
		e.fault.MaybePanic(n.name)
		// Drain pending channel input without blocking. With a queue bound
		// and the backpressure policy, a node over its bound stops draining
		// — the channel fills and upstream sends block.
		for e.canDrain(n) {
			select {
			case pb := <-n.in:
				deliver(pb)
				continue
			default:
			}
			break
		}
		// Queues are at their fullest right after the drain: publish depth
		// and high-water mark (owner-goroutine write, scraper-safe read).
		e.publishQueues(n)
		// Run the operator while it can make progress.
		ran := false
		for op.More(ctx) {
			n.punctBoundary = false
			op.Exec(ctx)
			ran = true
			// Apply-at-punctuation: this step ended on an emitted bound,
			// everything emitted is flushed and bounded — a quiescent
			// point where reconfiguration is indistinguishable from
			// having been the configuration all along.
			if n.punctBoundary && n.sincePunct == 0 && n.pendCount == 0 {
				e.maybeApplyReconf(n, op)
			}
		}
		if ran {
			// Progress ends an idle-waiting spell (reactivation, §4).
			e.exitIdle(n)
			// Still busy: only stale batches flush (the delay rule);
			// full batches and punctuation already flushed inside emit.
			if n.pendCount > 0 && time.Since(n.pendSince) >= time.Duration(n.maxDelayNs.Load()) {
				e.flushPending(n)
			}
			continue
		}
		// Going idle: nothing pending may outlive the producer's
		// attention (the idle rule), and the exit paths below rely on
		// downstream having seen everything emitted so far.
		e.flushPending(n)
		// Exit conditions: source got EOS and drained its inbox (EOS
		// itself was forwarded by Source.Exec); non-source saw EOS on
		// every input and drained.
		if src != nil && n.srcDone && src.Inbox().Empty() {
			return
		}
		if allEOS() && drained() {
			e.exitIdle(n)
			if _, isSink := op.(*ops.Sink); !isSink && len(n.outs) > 0 {
				// TSM operators forward EOS themselves; stateless
				// ones forwarded it as ordinary punctuation. A
				// latent-mode IWP op swallows punctuation, so emit
				// EOS explicitly for downstream termination.
				if u, ok := op.(*ops.Union); ok && u.Mode() == ops.LatentMode {
					e.emit(n, tuple.EOS())
				}
				if j, ok := op.(*ops.WindowJoin); ok && j.Mode() == ops.LatentMode {
					e.emit(n, tuple.EOS())
				}
			}
			return
		}
		// Idle: if we hold data but cannot run, signal demand upstream
		// toward the blocking input (the concurrent analogue of the
		// Backtrack rule) and wait with a retry timeout — the source
		// may decline a demand whose clock has not advanced yet, and
		// the hint must then be re-issued.
		// About to block while holding data: that is the paper's
		// idle-waiting state — open a spell (a no-op if one is open; demand
		// retries extend the same spell until the operator runs again).
		e.enterIdle(n, ctx)
		demanding := false
		if e.opts.OnDemandETS && src == nil && e.hasData(n) {
			e.demandUpstream(n, ctx)
			demanding = true
		}
		if demanding {
			select {
			case pb := <-n.in:
				deliver(pb)
			case <-n.dem:
				e.handleDemand(n, ctx)
			case k := <-n.ctl:
				e.handleCtl(n, k)
			case <-time.After(200 * time.Microsecond):
				// retry the demand on the next iteration
			case <-e.stop:
				e.exitIdle(n)
				return
			}
			continue
		}
		// Block until input, demand, or a watchdog control signal arrives.
		// (n.ctl is nil for non-source nodes; a nil case never fires.)
		select {
		case pb := <-n.in:
			deliver(pb)
		case <-n.dem:
			e.handleDemand(n, ctx)
		case k := <-n.ctl:
			e.handleCtl(n, k)
		case <-e.stop:
			e.exitIdle(n)
			return
		}
	}
}

// maybeApplyReconf consumes the node's pending reconfiguration, if any.
// Called only from the node's own goroutine at a verified quiescent point
// (last emission was a punctuation, nothing pending), so Apply hooks may
// touch operator state freely.
func (e *Engine) maybeApplyReconf(n *node, op ops.Operator) {
	rc := n.reconf.Swap(nil)
	if rc == nil {
		return
	}
	if rc.BatchSize > 0 {
		n.batchSize.Store(int64(rc.BatchSize))
	}
	if rc.MaxBatchDelay > 0 {
		n.maxDelayNs.Store(int64(rc.MaxBatchDelay))
	}
	if rc.Apply != nil {
		rc.Apply(op)
	}
	n.obs.retunes.Inc()
	if e.trace != nil {
		e.trace.Emit(metrics.EvRetuneApplied, n.name, e.now(), n.obs.wmOut.Load())
	}
}

// Reconfigure publishes a punctuation-aligned reconfiguration for node id.
// The node's goroutine applies it at its next quiescent boundary; until
// then the previous configuration stays live. A second Reconfigure before
// the first applied replaces it (the controller's newest decision wins).
// Returns false for an unknown node id.
//
// Nodes that never emit punctuation (sinks) never reach a boundary, so a
// reconfiguration stays pending forever — harmless, since a node without
// out-arcs has no batch plane to tune either.
func (e *Engine) Reconfigure(id int, rc Reconfig) bool {
	if id < 0 || id >= len(e.nodes) {
		return false
	}
	e.nodes[id].reconf.Store(&rc)
	return true
}

// NodeBatchSize reports node id's live per-arc batch capacity.
func (e *Engine) NodeBatchSize(id int) int {
	if id < 0 || id >= len(e.nodes) {
		return 0
	}
	return int(e.nodes[id].batchSize.Load())
}

// NodeMaxBatchDelay reports node id's live stale-batch flush bound.
func (e *Engine) NodeMaxBatchDelay(id int) time.Duration {
	if id < 0 || id >= len(e.nodes) {
		return 0
	}
	return time.Duration(e.nodes[id].maxDelayNs.Load())
}

// NodeOperator returns node id's operator instance (nil for an unknown id).
// The instance is shared with the running goroutine: callers may only use
// the operator's documented concurrency-safe surfaces (counter reads,
// atomic-swapped tables) or mutate it through Reconfigure's Apply hook.
func (e *Engine) NodeOperator(id int) ops.Operator {
	if id < 0 || id >= len(e.nodes) {
		return nil
	}
	return e.nodes[id].gn.Op
}

// NumNodes reports the graph's node count (node ids are 0..NumNodes-1).
func (e *Engine) NumNodes() int { return len(e.nodes) }

// NodeName reports node id's operator name ("" for an unknown id).
func (e *Engine) NodeName(id int) string {
	if id < 0 || id >= len(e.nodes) {
		return ""
	}
	return e.nodes[id].name
}

// Now reads the engine's virtual clock (Options.Now, or wall time since
// construction).
func (e *Engine) Now() tuple.Time { return e.now() }

// NodeFanOut reports how many out arcs node id has.
func (e *Engine) NodeFanOut(id int) int {
	if id < 0 || id >= len(e.nodes) {
		return 0
	}
	return len(e.nodes[id].outs)
}

// Tracer exposes the engine's trace ring (nil when tracing is off).
func (e *Engine) Tracer() *metrics.Tracer { return e.trace }

// EngineOptions returns the options the engine was built with.
func (e *Engine) EngineOptions() Options { return e.opts }

// ShardGroup is one partitioned operator's adaptive surface: the splitters
// feeding its shards (all of which must receive identical retargets to keep
// keys co-located) and the replication factor.
type ShardGroup struct {
	// Name is the original operator's name.
	Name string
	// Shards is the replication factor.
	Shards int
	// Splitters holds the Split instance per input port.
	Splitters []*ops.Split
}

// ShardGroups lists the partitioned operators' splitter groups, or nil for
// an unsharded engine.
func (e *Engine) ShardGroups() []ShardGroup {
	if e.plan == nil {
		return nil
	}
	var out []ShardGroup
	for _, sh := range e.plan.Ops {
		g := ShardGroup{Name: sh.Name, Shards: sh.Shards}
		for _, id := range sh.Splitters {
			if s, ok := e.g.Node(id).Op.(*ops.Split); ok {
				g.Splitters = append(g.Splitters, s)
			}
		}
		if len(g.Splitters) > 0 {
			out = append(out, g)
		}
	}
	return out
}

func (e *Engine) hasData(n *node) bool {
	for _, q := range n.ins {
		if q.DataLen() > 0 {
			return true
		}
	}
	return false
}

// signalDemand delivers a non-blocking demand hint to a node.
func (e *Engine) signalDemand(n *node) {
	select {
	case n.dem <- struct{}{}:
	default: // already signalled; hint coalesces
	}
}

// demandUpstream signals demand toward every predecessor that could be
// withholding the bound this node idle-waits for: the blocking input's
// producer, plus the producer of every other input whose queue is empty. The
// fan-out matters in a partitioned graph — a starving shard's inputs come
// from different splitters, each rooted at a different source, and waking
// only the first would leave the shard's other register stuck until the
// retry timer fires. Over-signalling is safe: a demand is a coalescing hint,
// and a source declines it unless its ETS estimator can actually advance the
// bound.
func (e *Engine) demandUpstream(n *node, ctx *ops.Ctx) {
	if len(n.gn.Preds) == 0 {
		return
	}
	j := n.gn.Op.BlockingInput(ctx)
	if j < 0 {
		j = 0
	}
	n.obs.demandSent.Inc()
	if e.trace != nil {
		e.trace.Emit(metrics.EvDemandSent, n.name, e.now(), int64(j))
	}
	e.signalDemand(e.nodes[n.gn.Preds[j]])
	for i, p := range n.gn.Preds {
		if i != j && n.ins[i].Empty() {
			e.signalDemand(e.nodes[p])
		}
	}
}

// handleDemand reacts to a demand signal. A node holding pending output
// flushes it — the tuples downstream idle-waits for may already be batched
// here (the demand flush rule). Otherwise sources answer with an ETS (if the
// estimator allows) and interior nodes forward the demand upstream along
// their (blocking) input.
func (e *Engine) handleDemand(n *node, ctx *ops.Ctx) {
	n.obs.demandRecv.Inc()
	if n.pendCount > 0 {
		e.flushPending(n)
		if e.hasData(n) || n.gn.Source() != nil {
			return
		}
		// The flushed batches may not contain what downstream starves
		// for — a splitter can hold output for shard A while shard B is
		// the one demanding — and with our own inputs drained nothing
		// else is coming. Keep the demand moving upstream.
	}
	if src := n.gn.Source(); src != nil {
		if !src.Inbox().Empty() {
			return // data is already on the way
		}
		if p, ok := src.OnDemandETS(e.now()); ok {
			e.etsGenerated.Add(1)
			if src.TSKind() == tuple.Internal {
				n.obs.etsInternal.Inc()
			} else {
				n.obs.etsExternal.Inc()
			}
			if e.trace != nil {
				e.trace.Emit(metrics.EvETSGen, n.name, p.Ts, 0)
			}
			src.Offer(p)
		}
		return
	}
	e.demandUpstream(n, ctx)
}
