package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// probeOp is a pass-through operator that tracks, from the operator's own
// point of view, how many data tuples it has emitted since its last emitted
// punctuation. A Reconfig.Apply hook runs on the same goroutine, so it can
// read sincePunct directly: nonzero at apply time means the reconfiguration
// was observed between a batch and its bounding punctuation — the exact
// violation the apply-at-punctuation protocol must make impossible.
type probeOp struct {
	name       string
	sincePunct int // node-goroutine owned
}

func (p *probeOp) Name() string               { return p.name }
func (p *probeOp) NumInputs() int             { return 1 }
func (p *probeOp) OutSchema() *tuple.Schema   { return nil }
func (p *probeOp) More(ctx *ops.Ctx) bool     { return !ctx.Ins[0].Empty() }
func (p *probeOp) BlockingInput(*ops.Ctx) int { return 0 }
func (p *probeOp) Exec(ctx *ops.Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	if t.IsPunct() {
		p.sincePunct = 0
	} else {
		p.sincePunct++
	}
	ctx.Emit(t)
	return true
}

var _ ops.Operator = (*probeOp)(nil)

func buildProbePipeline(t *testing.T, opts Options) (*Engine, *ops.Source, *probeOp, int, *collector) {
	t.Helper()
	g := graph.New("adapt")
	sch := intSchema("s", tuple.External)
	src := ops.NewSource("src", sch, 0)
	sid := g.AddNode(src)
	probe := &probeOp{name: "probe"}
	pid := g.AddNode(probe, sid)
	col := &collector{}
	g.AddNode(ops.NewSink("sink", col.add), pid)
	e, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, src, probe, int(pid), col
}

func TestReconfigureAppliesAtNextBoundary(t *testing.T) {
	tr := metrics.NewTracer(256)
	e, src, _, pid, _ := buildProbePipeline(t, Options{BatchSize: 8, Trace: tr})
	e.Start()

	applied := make(chan struct{})
	var hookRan atomic.Bool
	if !e.Reconfigure(pid, Reconfig{
		BatchSize:     3,
		MaxBatchDelay: 123 * time.Microsecond,
		Apply: func(op ops.Operator) {
			hookRan.Store(true)
			close(applied)
		},
	}) {
		t.Fatal("Reconfigure rejected a valid node id")
	}
	if e.Reconfigure(999, Reconfig{}) {
		t.Error("Reconfigure accepted an out-of-range id")
	}

	// Data alone must not trigger the apply; the punctuation boundary does.
	for i := 0; i < 5; i++ {
		e.Ingest(src, tuple.NewData(tuple.Time(i+1), tuple.Int(int64(i))))
	}
	select {
	case <-applied:
		t.Fatal("reconfiguration applied without a punctuation boundary")
	case <-time.After(20 * time.Millisecond):
	}
	e.Ingest(src, tuple.NewPunct(100))
	select {
	case <-applied:
	case <-time.After(2 * time.Second):
		t.Fatal("reconfiguration never applied after a punctuation")
	}
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if !hookRan.Load() {
		t.Fatal("Apply hook did not run")
	}
	if got := e.NodeBatchSize(pid); got != 3 {
		t.Errorf("NodeBatchSize = %d, want 3", got)
	}
	if got := e.NodeMaxBatchDelay(pid); got != 123*time.Microsecond {
		t.Errorf("NodeMaxBatchDelay = %v, want 123µs", got)
	}
	if tr.Count(metrics.EvRetuneApplied) == 0 {
		t.Error("no EvRetuneApplied trace event")
	}
	snap := e.Snapshot()
	if ns := snap.Node("probe"); ns == nil || ns.Retunes == 0 || ns.BatchSize != 3 {
		t.Errorf("snapshot retune evidence missing: %+v", ns)
	}
}

// TestReconfigureNeverAppliesMidBatch is the race-widened property test: a
// controller goroutine spams reconfigurations while the stream alternates
// data bursts and punctuation, with the fault injector's source stall
// holding the pipeline mid-burst — data emitted, bound not yet — for long
// windows. Every Apply hook asserts the probe operator is quiescent (no
// data emitted since its last punctuation). Run under -race.
func TestReconfigureNeverAppliesMidBatch(t *testing.T) {
	inj := fault.New(fault.Config{
		Seed:        7,
		StallSource: "src",
		StallAfter:  10 * time.Millisecond,
		StallFor:    30 * time.Millisecond,
	})
	e, src, probe, pid, _ := buildProbePipeline(t, Options{BatchSize: 16, Fault: inj})
	e.Start()
	inj.Arm()

	var applies, violations atomic.Int64
	stopCtl := make(chan struct{})
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		bs := 1
		for {
			select {
			case <-stopCtl:
				return
			default:
			}
			bs = bs%64 + 1
			e.Reconfigure(pid, Reconfig{
				BatchSize: bs,
				Apply: func(op ops.Operator) {
					applies.Add(1)
					if op.(*probeOp).sincePunct != 0 {
						violations.Add(1)
					}
				},
			})
			time.Sleep(50 * time.Microsecond)
		}
	}()

	ts := tuple.Time(1)
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		// A burst of unbounded data: the probe emits rows whose bounding
		// punctuation has not been sent yet.
		for i := 0; i < 20; i++ {
			e.Ingest(src, tuple.NewData(ts, tuple.Int(int64(ts))))
			ts++
		}
		// The stall holds the stream mid-burst: downstream sits with
		// emitted-but-unbounded data while the controller keeps firing.
		for inj.SourceStalled("src") {
			time.Sleep(time.Millisecond)
		}
		e.Ingest(src, tuple.NewPunct(ts))
		ts++
	}
	e.Ingest(src, tuple.NewPunct(ts))
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stopCtl)
	<-ctlDone

	if applies.Load() == 0 {
		t.Fatal("no reconfiguration ever applied")
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reconfigurations observed between a batch and its bounding punctuation", v)
	}
	if probe.sincePunct != 0 {
		t.Errorf("probe ended un-quiescent: %d data since last punct", probe.sincePunct)
	}
}
