package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
	"repro/internal/window"
)

// collector is a concurrency-safe sink callback.
type collector struct {
	mu  sync.Mutex
	out []*tuple.Tuple
	at  []tuple.Time
}

func (c *collector) add(t *tuple.Tuple, now tuple.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = append(c.out, t)
	c.at = append(c.at, now)
}

func (c *collector) snapshot() []*tuple.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*tuple.Tuple(nil), c.out...)
}

func intSchema(name string, ts tuple.TSKind) *tuple.Schema {
	return tuple.NewSchema(name, tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(ts)
}

func TestRuntimeSimplePath(t *testing.T) {
	g := graph.New("p")
	sch := intSchema("s", tuple.Internal)
	src := ops.NewSource("src", sch, 0)
	n := g.AddNode(src)
	f := g.AddNode(ops.NewSelect("sel", sch, func(tp *tuple.Tuple) bool {
		return tp.Vals[0].AsInt()%2 == 0
	}), n)
	col := &collector{}
	g.AddNode(ops.NewSink("sink", col.add), f)

	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 10; i++ {
		e.Ingest(src, tuple.NewData(0, tuple.Int(int64(i))))
	}
	e.CloseStream(src)
	e.Wait()
	got := col.snapshot()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	prev := tuple.MinTime
	for _, tp := range got {
		if tp.Ts < prev {
			t.Fatal("output disordered")
		}
		prev = tp.Ts
	}
}

func TestRuntimeRejectsInvalidGraph(t *testing.T) {
	if _, err := New(graph.New("empty"), Options{}); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func buildUnion(t *testing.T, mode ops.IWPMode, ts tuple.TSKind) (*graph.Graph, *ops.Source, *ops.Source, *collector) {
	t.Helper()
	g := graph.New("u")
	s1 := ops.NewSource("s1", intSchema("s1", ts), 0)
	s2 := ops.NewSource("s2", intSchema("s2", ts), 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, mode), a, b)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), u)
	return g, s1, s2, col
}

func TestRuntimeUnionIdleWaitsWithoutETS(t *testing.T) {
	g, s1, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: false})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	time.Sleep(50 * time.Millisecond)
	if n := len(col.snapshot()); n != 0 {
		t.Fatalf("tuple delivered without a bound on stream 2 (%d)", n)
	}
}

func TestRuntimeOnDemandETSReleases(t *testing.T) {
	g, s1, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	deadline := time.Now().Add(5 * time.Second)
	for len(col.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("on-demand ETS never released the tuple")
		}
		time.Sleep(time.Millisecond)
	}
	if e.ETSGenerated() == 0 {
		t.Error("no ETS generated")
	}
	// Latency should be small (sub-50ms wall time even under CI load).
	col.mu.Lock()
	lat := col.at[0] - col.out[0].Ts
	col.mu.Unlock()
	if lat > tuple.FromDuration(250*time.Millisecond) {
		t.Errorf("latency = %v, expected near-immediate delivery", lat)
	}
}

func TestRuntimeUnionMergesOrdered(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 50; i++ {
		e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
		e.Ingest(s2, tuple.NewData(0, tuple.Int(int64(100+i))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	got := col.snapshot()
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	prev := tuple.MinTime
	for _, tp := range got {
		if tp.Ts < prev {
			t.Fatal("merged output disordered")
		}
		prev = tp.Ts
	}
}

func TestRuntimeLatentUnion(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.LatentMode, tuple.Latent)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 10; i++ {
		e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	if n := len(col.snapshot()); n != 10 {
		t.Fatalf("latent union delivered %d, want 10", n)
	}
}

func TestRuntimeJoin(t *testing.T) {
	g := graph.New("j")
	s1 := ops.NewSource("s1", intSchema("s1", tuple.Internal), 0)
	s2 := ops.NewSource("s2", intSchema("s2", tuple.Internal), 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	j := g.AddNode(ops.NewWindowJoin("j", nil, window.TimeWindow(tuple.Minute),
		ops.EquiJoin(0, 0), ops.TSM), a, b)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), j)

	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 20; i++ {
		e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
		e.Ingest(s2, tuple.NewData(0, tuple.Int(int64(i))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	// Each key appears once per side within one window: 20 matches.
	if n := len(col.snapshot()); n != 20 {
		t.Fatalf("join delivered %d, want 20", n)
	}
}

func TestRuntimeStopTerminates(t *testing.T) {
	g, s1, _, _ := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	done := make(chan struct{})
	go func() {
		e.Stop()
		e.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate the engine")
	}
	e.Stop() // idempotent
}

func TestRuntimeThroughput(t *testing.T) {
	// A modest load test: 2×5000 tuples through union with on-demand ETS.
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true, ChannelDepth: 1024})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
		}
		e.CloseStream(s1)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			e.Ingest(s2, tuple.NewData(0, tuple.Int(int64(i))))
		}
		e.CloseStream(s2)
	}()
	wg.Wait()
	e.Wait()
	if got := len(col.snapshot()); got != 2*n {
		t.Fatalf("delivered %d, want %d", got, 2*n)
	}
}

func TestRuntimeAggregatePipeline(t *testing.T) {
	// source → aggregate → sink on the concurrent engine; windows flush
	// via data bounds and the final EOS.
	g := graph.New("agg")
	s1 := ops.NewSource("s1", intSchema("s1", tuple.External), 0)
	a := g.AddNode(s1)
	agg := ops.NewAggregate("agg", nil, 10, -1, ops.AggSpec{Fn: ops.Count})
	an := g.AddNode(agg, a)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), an)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for _, ts := range []tuple.Time{1, 5, 15, 25} {
		e.Ingest(s1, tuple.NewData(ts, tuple.Int(1)))
	}
	e.CloseStream(s1)
	e.Wait()
	rows := col.snapshot()
	if len(rows) != 3 {
		t.Fatalf("windows = %v", rows)
	}
	if rows[0].Ts != 10 || rows[0].Vals[0].AsInt() != 2 {
		t.Fatalf("first window = %v", rows[0])
	}
}

func TestRuntimeReorderPipeline(t *testing.T) {
	// Disordered external input through a reorder stage feeding a union.
	g := graph.New("re")
	s1 := ops.NewSource("s1", intSchema("s1", tuple.External), 0)
	s2 := ops.NewSource("s2", intSchema("s2", tuple.External), 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	r := g.AddNode(ops.NewReorder("r", nil, 100), a)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), r, b)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), u)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for _, ts := range []tuple.Time{50, 10, 80, 40, 200} {
		e.Ingest(s1, tuple.NewData(ts, tuple.Int(int64(ts))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	got := col.snapshot()
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5", len(got))
	}
	prev := tuple.MinTime
	for _, tp := range got {
		if tp.Ts < prev {
			t.Fatalf("disordered output: %v", got)
		}
		prev = tp.Ts
	}
}

func TestRuntimeLatentJoinEOS(t *testing.T) {
	g := graph.New("lj")
	s1 := ops.NewSource("s1", intSchema("s1", tuple.Latent), 0)
	s2 := ops.NewSource("s2", intSchema("s2", tuple.Latent), 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	j := g.AddNode(ops.NewWindowJoin("j", nil, window.RowWindow(100),
		ops.EquiJoin(0, 0), ops.LatentMode), a, b)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), j)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(7)))
	e.Ingest(s2, tuple.NewData(0, tuple.Int(7)))
	e.CloseStream(s1)
	e.CloseStream(s2)
	done := make(chan struct{})
	go func() { e.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("latent join pipeline failed to terminate")
	}
	if n := len(col.snapshot()); n != 1 {
		t.Fatalf("latent join delivered %d, want 1", n)
	}
}

func TestRuntimeIngestBatch(t *testing.T) {
	g := graph.New("ib")
	sch := intSchema("s", tuple.Internal)
	src := ops.NewSource("src", sch, 0)
	n := g.AddNode(src)
	col := &collector{}
	g.AddNode(ops.NewSink("sink", col.add), n)

	e, err := New(g, Options{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	var batch []*tuple.Tuple
	for i := 0; i < 1000; i++ {
		batch = append(batch, tuple.NewData(0, tuple.Int(int64(i))))
		if len(batch) == 100 {
			e.IngestBatch(src, batch)
			batch = batch[:0]
		}
	}
	e.IngestBatch(src, nil) // no-op
	e.CloseStream(src)
	e.Wait()
	got := col.snapshot()
	if len(got) != 1000 {
		t.Fatalf("delivered %d, want 1000", len(got))
	}
	for i, tp := range got {
		if tp.Vals[0].AsInt() != int64(i) {
			t.Fatalf("tuple %d out of order: %v", i, tp)
		}
	}
	if e.BatchesSent() == 0 || e.TuplesSent() != 1001 { // 1000 data + EOS
		t.Fatalf("batch metrics: batches=%d tuples=%d", e.BatchesSent(), e.TuplesSent())
	}
	if factor := float64(e.TuplesSent()) / float64(e.BatchesSent()); factor < 2 {
		t.Errorf("batching factor %.1f; bulk ingest should amortize sends", factor)
	}
}

// TestRuntimeBatchingPreservesPunctuationLatency is the latency-preservation
// regression test for the batched data plane: an ETS/punctuation tuple must
// reach the sink immediately — flushed out of any partial batch — rather
// than waiting for the batch to fill or for MaxBatchDelay to expire. With
// BatchSize larger than the whole input and MaxBatchDelay of a minute, any
// delivery within the deadline proves flush-on-punctuation works.
func TestRuntimeBatchingPreservesPunctuationLatency(t *testing.T) {
	g, s1, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{
		OnDemandETS:   true,
		BatchSize:     1 << 16, // never fills
		MaxBatchDelay: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	start := time.Now()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	// The tuple can only reach the sink if (a) the source's batch flushed
	// without filling and (b) the on-demand ETS for the sparse stream
	// flushed through the union without filling its batch either.
	deadline := time.Now().Add(5 * time.Second)
	for len(col.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batching delayed punctuation: tuple never reached the sink")
		}
		time.Sleep(time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("delivery took %v; punctuation must flush immediately", elapsed)
	}
	if e.ETSGenerated() == 0 {
		t.Error("no ETS generated")
	}
}

// TestRuntimeBatchedEOSDrains covers EOS riding in a partially-filled batch:
// termination must not wait for batch fill or delay expiry.
func TestRuntimeBatchedEOSDrains(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{
		OnDemandETS:   true,
		BatchSize:     1 << 16,
		MaxBatchDelay: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 17; i++ { // deliberately not a multiple of any batch size
		e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
		e.Ingest(s2, tuple.NewData(0, tuple.Int(int64(i))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	done := make(chan struct{})
	go func() { e.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batched pipeline failed to drain on EOS")
	}
	if n := len(col.snapshot()); n != 34 {
		t.Fatalf("delivered %d, want 34", n)
	}
}

// TestRuntimeBatchSizesAgree runs the union workload across batch sizes and
// checks the results are identical — batching is a transport optimization,
// not a semantic change.
func TestRuntimeBatchSizesAgree(t *testing.T) {
	run := func(batch int, recycle bool) int {
		g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
		e, err := New(g, Options{
			OnDemandETS: true,
			BatchSize:   batch,
			Recycle:     recycle,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		var raws []*tuple.Tuple
		for i := 0; i < 500; i++ {
			raws = append(raws, tuple.NewData(0, tuple.Int(int64(i))))
			if len(raws) == 50 {
				e.IngestBatch(s1, raws[:25])
				e.IngestBatch(s2, raws[25:])
				raws = raws[:0]
			}
		}
		e.CloseStream(s1)
		e.CloseStream(s2)
		e.Wait()
		return len(col.snapshot())
	}
	want := run(1, false)
	for _, bs := range []int{2, 64, 4096} {
		if got := run(bs, false); got != want {
			t.Errorf("BatchSize=%d delivered %d, BatchSize=1 delivered %d", bs, got, want)
		}
	}
	if got := run(64, true); got != want {
		t.Errorf("Recycle delivered %d, want %d", got, want)
	}
}

// TestRuntimeRecycleIgnoredOnFanOut ensures the engine refuses to install
// the release hook when a tuple pointer can live on two arcs at once.
func TestRuntimeRecycleIgnoredOnFanOut(t *testing.T) {
	g := graph.New("fan")
	sch := intSchema("s", tuple.Internal)
	src := ops.NewSource("src", sch, 0)
	n := g.AddNode(src)
	c1 := &collector{}
	c2 := &collector{}
	g.AddNode(ops.NewSink("k1", c1.add), n)
	g.AddNode(ops.NewSink("k2", c2.add), n)
	e, err := New(g, Options{Recycle: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.recycle {
		t.Fatal("recycle must be disabled on fan-out graphs")
	}
	e.Start()
	for i := 0; i < 10; i++ {
		e.Ingest(src, tuple.NewData(0, tuple.Int(int64(i))))
	}
	e.CloseStream(src)
	e.Wait()
	if len(c1.snapshot()) != 10 || len(c2.snapshot()) != 10 {
		t.Fatalf("fan-out delivered %d/%d, want 10/10", len(c1.snapshot()), len(c2.snapshot()))
	}
}

func TestRuntimeDemandForwardsThroughInteriorNodes(t *testing.T) {
	// union ← select ← source on the sparse side: the demand signal must
	// be forwarded through the interior select to reach the source.
	g := graph.New("fwd")
	s1 := ops.NewSource("s1", intSchema("s1", tuple.Internal), 0)
	s2 := ops.NewSource("s2", intSchema("s2", tuple.Internal), 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	sel := g.AddNode(ops.NewSelect("sel", nil, func(*tuple.Tuple) bool { return true }), b)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, sel)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), u)

	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	deadline := time.Now().Add(5 * time.Second)
	for len(col.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("demand never reached the source through the select")
		}
		time.Sleep(time.Millisecond)
	}
	if e.ETSGenerated() == 0 {
		t.Error("no ETS generated")
	}
}
