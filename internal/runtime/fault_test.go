package runtime

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRuntimePanicRestartPreservesOrder injects deterministic panics into the
// union node mid-workload and requires the supervisor to restart it with no
// tuple loss and no ordering violation: restarts must be invisible to the
// stream semantics because all node state lives on the node, not the
// goroutine stack.
func TestRuntimePanicRestartPreservesOrder(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	inj := fault.New(fault.Config{PanicEvery: 7, PanicNodes: []string{"u"}})
	e, err := New(g, Options{
		OnDemandETS:    true,
		MaxRestarts:    1 << 20,
		RestartBackoff: 10 * time.Microsecond,
		Fault:          inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 2000
	var wg sync.WaitGroup
	for _, src := range []*ops.Source{s1, s2} {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				e.Ingest(src, tuple.NewData(0, tuple.Int(int64(i))))
			}
			e.CloseStream(src)
		}()
	}
	wg.Wait()
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	got := col.snapshot()
	if len(got) != 2*n {
		t.Fatalf("delivered %d, want %d", len(got), 2*n)
	}
	prev := tuple.MinTime
	for _, tp := range got {
		if tp.Ts < prev {
			t.Fatal("output disordered across restarts")
		}
		prev = tp.Ts
	}
	s := e.Snapshot()
	u := s.Node("u")
	if u == nil || u.Restarts == 0 || u.Panics == 0 {
		t.Fatalf("union was never restarted: %+v", u)
	}
	if u.Restarts != inj.Stats().Panics {
		t.Errorf("restarts=%d, injected panics=%d; every panic should restart",
			u.Restarts, inj.Stats().Panics)
	}
}

// TestRuntimeRestartBudgetFailsEngine crash-loops the sink with no restart
// budget: the engine must fail cleanly — errored Wait, every goroutine
// released — rather than deadlock the rest of the graph.
func TestRuntimeRestartBudgetFailsEngine(t *testing.T) {
	g, s1, _, _ := buildUnion(t, ops.TSM, tuple.Internal)
	inj := fault.New(fault.Config{PanicEvery: 1, PanicNodes: []string{"k"}})
	e, err := New(g, Options{MaxRestarts: -1, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	done := make(chan error, 1)
	go func() { done <- e.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Wait returned nil after an exhausted restart budget")
		}
		if !strings.Contains(err.Error(), `"k"`) {
			t.Errorf("error does not name the failed node: %v", err)
		}
		if e.Err() == nil {
			t.Error("Err() nil after failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine deadlocked instead of failing")
	}
}

// TestRuntimeWatchdogForcesETS starves one union input with demand-driven ETS
// off: only the source-liveness watchdog can unblock the idle-waiting union,
// by forcing a bound into the silent source.
func TestRuntimeWatchdogForcesETS(t *testing.T) {
	g, s1, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	tr := metrics.NewTracer(1024)
	e, err := New(g, Options{
		OnDemandETS:   false,
		SourceTimeout: 25 * time.Millisecond,
		Trace:         tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	waitFor(t, 5*time.Second, "watchdog-forced delivery", func() bool {
		return len(col.snapshot()) >= 1
	})
	s := e.Snapshot()
	if s.ForcedETS == 0 {
		t.Fatal("engine ForcedETS = 0 after a forced release")
	}
	if n := s.Node("s2"); n == nil || n.ForcedETS == 0 {
		t.Fatalf("silent source s2 shows no forced ETS: %+v", n)
	}
	if tr.Count(metrics.EvETSForced) == 0 {
		t.Error("no EvETSForced event traced")
	}
}

// TestRuntimeDeadSourceReleasesAndRevives lets an external source that never
// produced a tuple (so no skew bound exists and no ETS can be forced) pass
// the dead threshold: the watchdog must close its stream so the union
// releases the live side's tuples, and a reappearing tuple must revive it.
func TestRuntimeDeadSourceReleasesAndRevives(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.External)
	tr := metrics.NewTracer(1024)
	e, err := New(g, Options{
		OnDemandETS:     false,
		SourceTimeout:   10 * time.Millisecond,
		SourceDeadAfter: 30 * time.Millisecond,
		Trace:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(s1, tuple.NewData(100, tuple.Int(1)))
	waitFor(t, 5*time.Second, "dead-source EOS to release the union", func() bool {
		return len(col.snapshot()) >= 1
	})
	s := e.Snapshot()
	if n := s.Node("s2"); n == nil || !n.Dead {
		t.Fatalf("s2 not marked dead: %+v", n)
	}
	// s1 may also pass the dead threshold once its tuple is delivered, so
	// only a lower bound on the engine-level gauge is stable.
	if s.DeadSources < 1 {
		t.Fatalf("DeadSources = %d, want ≥ 1", s.DeadSources)
	}
	if tr.Count(metrics.EvSourceDead) == 0 {
		t.Error("no EvSourceDead event traced")
	}
	// Revival: the feed comes back.
	e.Ingest(s2, tuple.NewData(200, tuple.Int(2)))
	waitFor(t, 5*time.Second, "source revival", func() bool {
		s := e.Snapshot()
		n := s.Node("s2")
		return n != nil && n.Revived >= 1 && !n.Dead
	})
	if tr.Count(metrics.EvSourceRevive) == 0 {
		t.Error("no EvSourceRevive event traced")
	}
}

// TestRuntimeLateTuplesCounted builds a window where a watchdog-forced ETS
// overshoots a tuple still in flight: the external estimator promises
// lastTs + elapsed − δ, so a tuple older than that arriving after the forced
// bound is late and must be counted (per node and per engine), not silently
// absorbed.
func TestRuntimeLateTuplesCounted(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.External)
	tr := metrics.NewTracer(1024)
	e, err := New(g, Options{
		OnDemandETS:   false,
		SourceTimeout: 15 * time.Millisecond,
		Trace:         tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	// Seed both estimators, then idle the union on s2's silence.
	e.Ingest(s1, tuple.NewData(100, tuple.Int(1)))
	e.Ingest(s2, tuple.NewData(100, tuple.Int(2)))
	e.Ingest(s1, tuple.NewData(200, tuple.Int(3)))
	// The forced ETS for s2 will be ≈ 100 + elapsed-since-arrival (δ = 0),
	// far above 150 after a 15ms timeout. Wait for it, then deliver the
	// overshot tuple.
	waitFor(t, 5*time.Second, "forced ETS on the stalled source", func() bool {
		s := e.Snapshot()
		n := s.Node("s2")
		return n != nil && n.ForcedETS >= 1
	})
	e.Ingest(s2, tuple.NewData(150, tuple.Int(4)))
	waitFor(t, 5*time.Second, "late-tuple accounting", func() bool {
		return e.Snapshot().LateTuples >= 1
	})
	s := e.Snapshot()
	if n := s.Node("u"); n == nil || n.LateTuples == 0 {
		t.Fatalf("union shows no late tuples: %+v", n)
	}
	if tr.Count(metrics.EvLateTuple) == 0 {
		t.Error("no EvLateTuple event traced")
	}
	_ = col
}

// slowGraph builds src → slow select → sink, where every tuple costs the
// select a fixed sleep — an overload generator for queue-bound tests.
func slowGraph(t *testing.T, perTuple time.Duration) (*graph.Graph, *ops.Source, *collector) {
	t.Helper()
	g := graph.New("slow")
	sch := intSchema("s", tuple.Internal)
	src := ops.NewSource("src", sch, 0)
	a := g.AddNode(src)
	sel := g.AddNode(ops.NewSelect("sel", sch, func(*tuple.Tuple) bool {
		time.Sleep(perTuple)
		return true
	}), a)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), sel)
	return g, src, col
}

// TestRuntimeBackpressureBoundsQueue overloads a slow operator under the
// blocking policy: every tuple must still arrive, and the slow node's queue
// high-water mark must stay near MaxQueueLen instead of absorbing the whole
// input.
func TestRuntimeBackpressureBoundsQueue(t *testing.T) {
	g, src, col := slowGraph(t, 20*time.Microsecond)
	e, err := New(g, Options{MaxQueueLen: 32, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 1500
	for i := 0; i < n; i++ {
		e.Ingest(src, tuple.NewData(0, tuple.Int(int64(i))))
	}
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := len(col.snapshot()); got != n {
		t.Fatalf("backpressure lost tuples: delivered %d, want %d", got, n)
	}
	s := e.Snapshot()
	if s.TuplesShed != 0 {
		t.Fatalf("backpressure policy shed %d tuples", s.TuplesShed)
	}
	// Bound + one in-flight batch + punctuation slack.
	if hwm := s.Node("sel").QueueHWM; hwm > 32+8+8 {
		t.Fatalf("queue HWM %d escaped the bound 32", hwm)
	}
}

// TestRuntimeSheddingDropsOldest overloads the same graph under the shedding
// policy: delivered + shed must account for every tuple, some shedding must
// actually occur, and the survivors stay ordered.
func TestRuntimeSheddingDropsOldest(t *testing.T) {
	g, src, col := slowGraph(t, 50*time.Microsecond)
	tr := metrics.NewTracer(1024)
	e, err := New(g, Options{MaxQueueLen: 16, Shed: true, BatchSize: 64, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 2000
	var raws []*tuple.Tuple
	for i := 0; i < n; i++ {
		raws = append(raws, tuple.NewData(0, tuple.Int(int64(i))))
		if len(raws) == 100 {
			e.IngestBatch(src, raws)
			raws = raws[:0]
		}
	}
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	got := col.snapshot()
	s := e.Snapshot()
	if s.TuplesShed == 0 {
		t.Fatal("overload produced no shedding")
	}
	if uint64(len(got))+s.TuplesShed != n {
		t.Fatalf("delivered %d + shed %d ≠ ingested %d", len(got), s.TuplesShed, n)
	}
	prev := tuple.MinTime
	for _, tp := range got {
		if tp.Ts < prev {
			t.Fatal("shedding disordered the survivors")
		}
		prev = tp.Ts
	}
	if tr.Count(metrics.EvShed) == 0 {
		t.Error("no EvShed event traced")
	}
}

// TestRuntimeChaosDropTuples runs with a 100% source drop rate: every data
// tuple is lost at ingest, EOS still terminates the graph, and the injector
// accounts each loss.
func TestRuntimeChaosDropTuples(t *testing.T) {
	g := graph.New("drop")
	sch := intSchema("s", tuple.Internal)
	src := ops.NewSource("src", sch, 0)
	a := g.AddNode(src)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), a)
	inj := fault.New(fault.Config{DropProb: 1.0, DropNodes: []string{"src"}})
	e, err := New(g, Options{Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 100
	for i := 0; i < n; i++ {
		e.Ingest(src, tuple.NewData(0, tuple.Int(int64(i))))
	}
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := len(col.snapshot()); got != 0 {
		t.Fatalf("delivered %d tuples past a 100%% drop rate", got)
	}
	if drops := inj.Stats().Drops; drops != n {
		t.Fatalf("injector counted %d drops, want %d", drops, n)
	}
}

// TestRuntimeStopConcurrent is the Stop-idempotency regression test: Stop,
// Wait, and CloseStream racing from many goroutines must neither panic
// (double close) nor deadlock.
func TestRuntimeStopConcurrent(t *testing.T) {
	g, s1, s2, _ := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); e.Stop() }()
	}
	wg.Add(2)
	go func() { defer wg.Done(); e.CloseStream(s1) }()
	go func() { defer wg.Done(); e.CloseStream(s2) }()
	go func() { wg.Wait(); e.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent Stop/Wait/CloseStream wedged")
	}
	if err := e.Err(); err != nil {
		t.Fatalf("Err after user Stop: %v", err)
	}
	e.Stop() // still idempotent after Wait
}
