// Fault tolerance for the concurrent runtime: per-node supervision, the
// source-liveness watchdog, and bounded-queue overload policies.
//
// The paper's IWP operators are only live if every input eventually produces
// a tuple or an ETS. Three failure classes break that promise in a real
// deployment, and each gets a defense here:
//
//   - a crashed operator goroutine silences every arc below it → each node
//     runs under a supervisor that recovers panics and restarts the loop
//     (bounded by Options.MaxRestarts with exponential backoff); exhausting
//     the budget fails the whole engine cleanly instead of deadlocking the
//     rest of the graph;
//   - a silently dead external source never answers demand → the watchdog
//     tracks per-source arrival times and, past Options.SourceTimeout,
//     forces a skew-bounded ETS through the source's own goroutine (at most
//     one per timeout window); past Options.SourceDeadAfter it declares the
//     source dead and closes its stream so downstream bounds keep advancing,
//     reviving it if tuples reappear (which then ride the relaxed-more /
//     late-drop paths and are counted as late);
//   - an overloaded graph grows queues without bound → Options.MaxQueueLen
//     caps buffered data per input, either by backpressure (stop draining,
//     let the channel fill, block upstream) or by drop-oldest shedding with
//     a per-node TuplesShed counter.
package runtime

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// ctlKind is a watchdog → source-node control signal. Control signals are
// delivered over a channel and handled on the source's own goroutine, so the
// watchdog never touches the source's inbox or estimator directly (both are
// single-owner).
type ctlKind uint8

const (
	// ctlForceETS asks an idle source to inject a skew-bounded ETS.
	ctlForceETS ctlKind = iota
	// ctlSourceDead asks the source to close its stream: the watchdog has
	// declared it dead.
	ctlSourceDead
)

// supervise is the per-node goroutine: it runs the scheduling loop, recovers
// panics, and restarts the loop with backoff until the node exits normally
// or its restart budget is exhausted — in which case the engine fails (a
// permanently absent node would deadlock every IWP operator downstream of
// it, which is exactly the stall class this runtime exists to prevent).
func (e *Engine) supervise(n *node) {
	defer e.wg.Done()
	defer e.activeNodes.Add(-1)
	defer n.done.Store(true)
	for {
		if e.runProtected(n) {
			return // normal exit (drain or stop)
		}
		n.obs.panics.Inc()
		if e.trace != nil {
			e.trace.Emit(metrics.EvNodePanic, n.name, e.now(), int64(n.restarts))
		}
		if n.restarts >= e.maxRestarts {
			e.fail(fmt.Errorf("runtime: node %q panicked %d times, restart budget %d exhausted",
				n.name, n.restarts+1, e.maxRestarts))
			return
		}
		n.restarts++
		n.obs.restarts.Inc()
		// Exponential backoff, capped at 256× the base so a crash-looping
		// node cannot freeze its subgraph for long stretches either.
		shift := n.restarts - 1
		if shift > 8 {
			shift = 8
		}
		if e.trace != nil {
			e.trace.Emit(metrics.EvNodeRestart, n.name, e.now(), int64(n.restarts))
		}
		select {
		case <-time.After(e.backoff << uint(shift)):
		case <-e.stop:
			return
		}
	}
}

// runProtected runs one runNode incarnation, converting a panic into a false
// return. Completion (true) means the loop exited by its own rules.
func (e *Engine) runProtected(n *node) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			completed = false
		}
	}()
	e.runNode(n)
	return true
}

// watchdog is the source-liveness monitor. It polls every source node's
// last-arrival clock at a fraction of the timeout; a source silent past
// Options.SourceTimeout while some operator idle-waits gets a forced ETS
// (via its own goroutine, at most one per timeout window), and one silent
// past Options.SourceDeadAfter is declared dead.
func (e *Engine) watchdog() {
	defer e.wg.Done()
	tick := e.opts.SourceTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	timeout := int64(tuple.FromDuration(e.opts.SourceTimeout))
	deadAfter := int64(0)
	if e.opts.SourceDeadAfter > 0 {
		deadAfter = int64(tuple.FromDuration(e.opts.SourceDeadAfter))
	}
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
		}
		if e.activeNodes.Load() == 0 {
			return // graph drained; nothing left to watch
		}
		now := int64(e.now())
		for _, n := range e.srcNodes {
			if n.done.Load() || n.dead.Load() {
				continue
			}
			silence := now - n.lastIn.Load()
			if silence < timeout {
				continue
			}
			if deadAfter > 0 && silence >= deadAfter {
				e.sendCtl(n, ctlSourceDead)
				continue
			}
			// Force at most one ETS per deadline window, and only when the
			// stall can actually be delaying results (an IWP operator is
			// idle-waiting) and the source has a bound to promise.
			if now-n.lastForce.Load() < timeout {
				continue
			}
			if !e.anyIdle() || !n.gn.Source().CanBound() {
				continue
			}
			n.lastForce.Store(now)
			e.sendCtl(n, ctlForceETS)
		}
	}
}

// sendCtl delivers a control signal without blocking: the channel is
// buffered and a busy (or exited) source simply coalesces or ignores it.
func (e *Engine) sendCtl(n *node, k ctlKind) {
	select {
	case n.ctl <- k:
	default:
	}
}

// anyIdle reports whether any node currently has an idle-waiting spell open.
func (e *Engine) anyIdle() bool {
	for _, n := range e.nodes {
		if n.obs.idleSince.Load() >= 0 {
			return true
		}
	}
	return false
}

// handleCtl reacts to a watchdog signal on the source's own goroutine, where
// touching the inbox and the ETS estimator is safe.
func (e *Engine) handleCtl(n *node, k ctlKind) {
	src := n.gn.Source()
	if src == nil || n.srcDone {
		return
	}
	switch k {
	case ctlForceETS:
		if !src.Inbox().Empty() {
			return // data is already on the way; no bound needed
		}
		if src.InjectETS(e.now()) {
			e.forcedETS.Add(1)
			n.obs.forcedETS.Inc()
			if e.trace != nil {
				e.trace.Emit(metrics.EvETSForced, n.name, e.now(), 0)
			}
		}
	case ctlSourceDead:
		if !n.dead.CompareAndSwap(false, true) {
			return
		}
		e.deadSources.Add(1)
		if e.trace != nil {
			e.trace.Emit(metrics.EvSourceDead, n.name, e.now(), 0)
		}
		// Close the stream downstream so watermarks keep advancing past
		// the dead feed. The node itself keeps running: if the source
		// revives, its tuples still flow (as counted late tuples).
		e.emit(n, tuple.EOS())
	}
}

// noteSourceActivity records an arrival at a source node and revives it if
// the watchdog had declared it dead.
func (e *Engine) noteSourceActivity(n *node) {
	n.lastIn.Store(int64(e.now()))
	if n.dead.Load() {
		n.dead.Store(false)
		e.deadSources.Add(-1)
		n.obs.revived.Inc()
		if e.trace != nil {
			e.trace.Emit(metrics.EvSourceRevive, n.name, e.now(), 0)
		}
	}
}

// countLate accounts data tuples that arrived below the node's input
// watermark — the observable footprint of an ETS overshoot or a revived
// source. The tuples themselves ride the relaxed-more / late-drop paths.
func (e *Engine) countLate(n *node, k int) {
	n.obs.lateTuples.Add(uint64(k))
	e.lateTuples.Add(uint64(k))
	if e.trace != nil {
		e.trace.Emit(metrics.EvLateTuple, n.name, e.now(), int64(k))
	}
}

// canDrain reports whether the node may keep moving deliveries from its
// inbox channel into its input queues. Unbounded engines and shedding
// engines always drain; a backpressure engine over its bound stops, which
// fills the channel and blocks upstream sends — the pressure chain.
func (e *Engine) canDrain(n *node) bool {
	if e.maxQueue <= 0 || e.shed {
		return true
	}
	if src := n.gn.Source(); src != nil {
		return src.Inbox().DataLen() < e.maxQueue
	}
	for _, q := range n.ins {
		if q.DataLen() >= e.maxQueue {
			return false
		}
	}
	return true
}

// shedOverflow enforces MaxQueueLen under the shedding policy: each input
// queue over its bound drops its oldest data tuples (punctuation survives)
// and the drop is counted per node, per engine, and in the trace.
func (e *Engine) shedOverflow(n *node, ctx *ops.Ctx) {
	if e.maxQueue <= 0 || !e.shed {
		return
	}
	shed := 0
	if src := n.gn.Source(); src != nil {
		if over := src.Inbox().DataLen() - e.maxQueue; over > 0 {
			shed += src.Inbox().ShedOldest(over, ctx.Release)
		}
	} else {
		for _, q := range n.ins {
			if over := q.DataLen() - e.maxQueue; over > 0 {
				shed += q.ShedOldest(over, ctx.Release)
			}
		}
	}
	if shed == 0 {
		return
	}
	n.obs.shedTuples.Add(uint64(shed))
	e.tuplesShed.Add(uint64(shed))
	if e.trace != nil {
		e.trace.Emit(metrics.EvShed, n.name, e.now(), int64(shed))
	}
}
