package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// colPipeline builds the columnar-eligible pipeline: source → select →
// project → hash split(2) → per-shard grouped aggregate → per-shard sink.
// External timestamps make the run deterministic.
func colPipeline(t *testing.T) (*graph.Graph, *ops.Source, [2]*collector) {
	t.Helper()
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "x", Kind: tuple.FloatKind},
		tuple.Field{Name: "pay", Kind: tuple.IntKind}).WithTS(tuple.External)
	g := graph.New("colpipe")
	src := ops.NewSource("src", sch, 0)
	a := g.AddNode(src)
	sel := ops.NewSelect("sel", nil, func(tp *tuple.Tuple) bool {
		return tp.Vals[1].AsFloat() < 0.6
	})
	sel.SetColPredicate(func(b *tuple.ColBatch, keep []bool) {
		for r := range keep {
			keep[r] = b.Value(1, r).AsFloat() < 0.6
		}
	})
	f := g.AddNode(sel, a)
	p := g.AddNode(ops.NewProject("proj", nil, []int{0, 1}), f)
	sp := g.AddNode(ops.NewSplit("split", nil, 2, 0), p)
	var cols [2]*collector
	for s := 0; s < 2; s++ {
		cols[s] = &collector{}
		ag := g.AddNode(ops.NewAggregate(fmt.Sprintf("agg%d", s), nil, 100, 0,
			ops.AggSpec{Fn: ops.Sum, Col: 1}, ops.AggSpec{Fn: ops.Count}), sp)
		g.AddNode(ops.NewSink(fmt.Sprintf("sink%d", s), cols[s].add), ag)
	}
	return g, src, cols
}

// colStream builds the deterministic external-timestamp stream: rows with
// increasing timestamps, a punctuation after every tenth row. Returned as
// rows; toColBatches converts it with punctuation as metadata.
func colStream(n int) []*tuple.Tuple {
	var out []*tuple.Tuple
	var lcg uint64 = 99
	for i := 0; i < n; i++ {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		out = append(out, tuple.NewData(tuple.Time(i*3),
			tuple.Int(int64((lcg>>33)%16)),
			tuple.Float(float64((lcg>>20)&0xFF)/256),
			tuple.Int(int64(i))))
		if i%10 == 9 {
			out = append(out, tuple.NewPunct(tuple.Time(i*3)))
		}
	}
	return out
}

func toColBatches(stream []*tuple.Tuple, size int) []*tuple.ColBatch {
	var out []*tuple.ColBatch
	b := tuple.GetColBatch(0)
	for _, t := range stream {
		b.AppendTuple(t)
		if b.Len() >= size {
			out = append(out, b)
			b = tuple.GetColBatch(0)
		}
	}
	if !b.Empty() {
		out = append(out, b)
	} else {
		tuple.PutColBatch(b)
	}
	return out
}

// runColPipeline executes the pipeline over the stream, columnar or row.
func runColPipeline(t *testing.T, columnar bool, stream []*tuple.Tuple, batch int) [2][]*tuple.Tuple {
	t.Helper()
	g, src, cols := colPipeline(t)
	e, err := New(g, Options{BatchSize: batch, Recycle: true, Columnar: columnar})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	if columnar {
		for _, b := range toColBatches(stream, 16) {
			e.IngestColBatch(src, b)
		}
	} else {
		e.IngestBatch(src, stream)
	}
	e.CloseStream(src)
	done := make(chan struct{})
	go func() { e.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline failed to drain on EOS")
	}
	return [2][]*tuple.Tuple{cols[0].snapshot(), cols[1].snapshot()}
}

// cloneRows deep-copies a stream so each engine run owns its input.
func cloneRows(stream []*tuple.Tuple) []*tuple.Tuple {
	out := make([]*tuple.Tuple, len(stream))
	for i, t := range stream {
		out[i] = t.Clone()
	}
	return out
}

func eqSinkStream(t *testing.T, label string, got, want []*tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Ts != w.Ts || len(g.Vals) != len(w.Vals) {
			t.Fatalf("%s: row %d = %v, want %v", label, i, g, w)
		}
		for c := range w.Vals {
			if g.Vals[c].String() != w.Vals[c].String() {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, c, g.Vals[c], w.Vals[c])
			}
		}
	}
}

// TestRuntimeColumnarEquivalence runs the same deterministic stream through
// the row and columnar planes and requires identical sink output — window
// closes, hash routing, projection and filtering must all agree, which also
// proves batch-metadata punctuation drains at the same stream positions as
// the in-band punct tuples of the row plane.
func TestRuntimeColumnarEquivalence(t *testing.T) {
	stream := colStream(300)
	for _, batch := range []int{1, 16, 256} {
		want := runColPipeline(t, false, cloneRows(stream), batch)
		got := runColPipeline(t, true, cloneRows(stream), batch)
		for s := 0; s < 2; s++ {
			eqSinkStream(t, fmt.Sprintf("batch-%d-shard-%d", batch, s), got[s], want[s])
		}
	}
}

// TestRuntimeColumnarMixedArcs runs a graph where a columnar select feeds a
// row-only TSM union: the engine must convert at the arc boundary and the
// union must still see an ordered merge.
func TestRuntimeColumnarMixedArcs(t *testing.T) {
	g := graph.New("mixed")
	sch := intSchema("s1", tuple.External)
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", intSchema("s2", tuple.External), 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	sel := ops.NewSelect("sel", nil, func(*tuple.Tuple) bool { return true })
	f := g.AddNode(sel, a)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), f, b)
	col := &collector{}
	g.AddNode(ops.NewSink("k", col.add), u)

	e, err := New(g, Options{BatchSize: 8, Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 100
	cb := tuple.GetColBatch(1)
	for i := 0; i < n; i++ {
		cb.AppendTuple(tuple.NewData(tuple.Time(i*2), tuple.Int(int64(i))))
	}
	e.IngestColBatch(s1, cb)
	for i := 0; i < n; i++ {
		e.Ingest(s2, tuple.NewData(tuple.Time(i*2+1), tuple.Int(int64(i))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	got := col.snapshot()
	if len(got) != 2*n {
		t.Fatalf("delivered %d, want %d", len(got), 2*n)
	}
	prev := tuple.MinTime
	for i, tp := range got {
		if tp.Ts < prev {
			t.Fatalf("union output disordered at %d: %v after %v", i, tp.Ts, prev)
		}
		prev = tp.Ts
	}
}

// TestRuntimeColumnarFanOut covers a columnar producer feeding both a
// columnar consumer and a row consumer from the same output: each arc must
// get an independent, complete copy.
func TestRuntimeColumnarFanOut(t *testing.T) {
	g := graph.New("fanout")
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "x", Kind: tuple.FloatKind}).WithTS(tuple.External)
	src := ops.NewSource("src", sch, 0)
	a := g.AddNode(src)
	sel := ops.NewSelect("sel", nil, func(*tuple.Tuple) bool { return true })
	f := g.AddNode(sel, a)
	// Columnar consumer: aggregate. Row consumer: plain sink.
	ag := g.AddNode(ops.NewAggregate("agg", nil, 50, -1, ops.AggSpec{Fn: ops.Count}), f)
	aggCol := &collector{}
	g.AddNode(ops.NewSink("aggsink", aggCol.add), ag)
	rawCol := &collector{}
	g.AddNode(ops.NewSink("rawsink", rawCol.add), f)

	e, err := New(g, Options{BatchSize: 16, Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 200
	for _, b := range toColBatches(colStream(n), 32) {
		e.IngestColBatch(src, b)
	}
	e.CloseStream(src)
	e.Wait()
	if raw := len(rawCol.snapshot()); raw != n {
		t.Fatalf("row arc delivered %d, want %d", raw, n)
	}
	var counted int64
	for _, r := range aggCol.snapshot() {
		counted += r.Vals[0].AsInt()
	}
	if counted != n {
		t.Fatalf("columnar arc counted %d rows, want %d", counted, n)
	}
}

// TestRuntimeColumnarEOSDrains: an EOS mark inside an ingested batch must
// terminate the pipeline exactly like CloseStream.
func TestRuntimeColumnarEOSDrains(t *testing.T) {
	g, src, cols := colPipeline(t)
	e, err := New(g, Options{BatchSize: 1 << 16, MaxBatchDelay: time.Minute, Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	cb := tuple.GetColBatch(0)
	for _, tp := range colStream(37) {
		cb.AppendTuple(tp)
	}
	cb.AppendPunct(tuple.MaxTime) // in-batch EOS
	e.IngestColBatch(src, cb)
	done := make(chan struct{})
	go func() { e.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-batch EOS failed to drain the pipeline")
	}
	if len(cols[0].snapshot())+len(cols[1].snapshot()) == 0 {
		t.Fatal("no aggregate output after EOS")
	}
}
