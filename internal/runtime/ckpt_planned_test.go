package runtime_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tuple"
)

// A planner-built join graph (source → hash join → project → sink) under an
// overload feed, used to regress a livelock: a barrier rides the arcs FIFO,
// so with unbounded queues a join whose fan-out outpaces its consumers pushes
// every checkpoint after the first out past its timeout. Bounded queues with
// backpressure keep the in-flight data — and therefore barrier latency —
// bounded, and consecutive checkpoints must all complete.
func TestCheckpointRepeatsOnPlannedGraph(t *testing.T) {
	e := core.NewEngine()
	e.MustExecute(`CREATE STREAM backbone (flow int, bytes int) TIMESTAMP EXTERNAL`, nil)
	e.MustExecute(`CREATE STREAM mgmt (flow int, code int) TIMESTAMP EXTERNAL`, nil)
	e.MustExecute(`SELECT backbone.flow, bytes, code FROM backbone JOIN mgmt ON backbone.flow = mgmt.flow WINDOW 200ms`, func(*tuple.Tuple, tuple.Time) {})
	re, err := e.BuildRuntime(runtime.Options{OnDemandETS: true, MaxQueueLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	_, sb, err := e.LookupStream("backbone")
	if err != nil {
		t.Fatal(err)
	}
	_, sm, err := e.LookupStream("mgmt")
	if err != nil {
		t.Fatal(err)
	}
	re.Start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, src := range []*ops.Source{sb, sm} {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				re.Ingest(src, tuple.NewData(tuple.Time(i*1000), tuple.Int(int64(i%8)), tuple.Int(int64(i))))
			}
		}()
	}
	// Let the feed build real pressure before the first barrier: the join's
	// ~25x fan-out (200ms window, 1ms tuple spacing, 8 keys) saturates it, so
	// every queue sits at its bound when the checkpoints start.
	time.Sleep(100 * time.Millisecond)
	for id := uint64(1); id <= 3; id++ {
		snap, err := re.Checkpoint(id, 30*time.Second)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", id, err)
		}
		names := make(map[string]bool, len(snap.Segments))
		for _, seg := range snap.Segments {
			names[seg.Name] = true
		}
		for _, want := range []string{"backbone", "mgmt", "join"} {
			if !names[want] {
				t.Fatalf("checkpoint %d: no segment for stateful node %q (got %v)", id, want, names)
			}
		}
	}
	close(stop)
	wg.Wait()
	re.Stop()
}
