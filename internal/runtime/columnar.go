// Columnar data plane for the concurrent runtime. With Options.Columnar,
// arcs whose consumer has a columnar fast path (ops.ColOperator) carry
// tuple.ColBatch — contiguous typed columns with punctuation as metadata
// marks — end to end; every other arc stays on row batches with lossless
// conversion at the boundary. The four flush rules of the batched data
// plane (punctuation / demand / idle / delay) apply to columnar pending
// batches identically: a batch acquiring a punctuation mark flushes
// immediately, so ETS latency is unchanged, and pendCount/pendSince cover
// both pending kinds so the demand, idle and delay triggers need no new
// code paths.
package runtime

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// IngestColBatch delivers a columnar batch of raw data rows to the given
// source node in one channel operation — the columnar analogue of
// IngestBatch. Ownership of b transfers to the engine; timestamping (per
// the stream's timestamp kind), sequence numbering and estimator feeding
// happen inside the source's goroutine, exactly as for row ingest.
//
// Batches should carry data rows only. Punctuation belongs on the row
// paths (Ingest / CloseStream / a wrapper's GetPunct) so its ordering
// against queued inbox tuples is exact; marks found in an ingested batch
// are tolerated but re-routed through the inbox, which may delay them
// relative to the batch's own rows (never the reverse — an early data
// tuple cannot violate a bound, an early bound could).
//
// Safe for concurrent use; blocks when the source's channel is full.
func (e *Engine) IngestColBatch(src *ops.Source, b *tuple.ColBatch) {
	if b == nil || b.Empty() {
		tuple.PutColBatch(b)
		return
	}
	n := e.srcNode[src]
	if n == nil {
		panic("runtime: IngestColBatch on a source not in this graph")
	}
	select {
	case n.in <- portBatch{port: 0, col: b}:
	case <-e.stop:
		tuple.PutColBatch(b)
	}
}

// deliverCol handles one columnar arc delivery on the receiving node's
// goroutine: source batches are stamped and emitted inline (columnar
// batches bypass the inbox queue), columnar-capable operators execute the
// batch directly, and row operators get a lossless row conversion into
// their input queue.
func (e *Engine) deliverCol(n *node, ctx *ops.Ctx, colCtx *ops.ColCtx, pb portBatch) {
	b := pb.col
	op := n.gn.Op
	n.obs.tuplesIn.Add(uint64(b.Len() + len(b.Puncts)))
	if src := n.gn.Source(); src != nil {
		e.noteSourceActivity(n)
		// Run the source dry first so anything already queued in the inbox
		// (row ingests, watchdog heartbeats) is emitted before this batch:
		// per-call arrival order is preserved across the two ingest paths.
		for op.More(ctx) {
			op.Exec(ctx)
		}
		if len(b.Puncts) > 0 {
			for _, p := range b.Puncts {
				if p.Ts == tuple.MaxTime {
					n.srcDone = true
				}
				pt := tuple.GetPunct(p.Ts)
				pt.Ckpt = p.Ckpt
				src.Offer(pt)
			}
			b.Puncts = b.Puncts[:0]
		}
		if e.fault != nil && b.Len() > 0 {
			// Chaos tuple-drop applies per row, as on the row ingest path.
			kept := tuple.GetColBatch(b.NumCols())
			for r := 0; r < b.Len(); r++ {
				if e.fault.DropTuple(n.name) {
					continue
				}
				kept.AppendRowFrom(b, r)
			}
			tuple.PutColBatch(b)
			b = kept
		}
		if b.Len() == 0 {
			tuple.PutColBatch(b)
			return
		}
		src.IngestCol(b, e.now())
		e.emitCol(n, b)
		return
	}
	// Late accounting uses the input watermark as of before this delivery,
	// as on the row path: a batch's own marks bound future batches, not the
	// rows travelling with them.
	wmPre := n.obs.wmIn.Load()
	if wmPre > int64(tuple.MinTime) && b.Len() > 0 {
		late := 0
		for _, ts := range b.Ts[:b.Len()] {
			if int64(ts) < wmPre {
				late++
			}
		}
		if late > 0 {
			e.countLate(n, late)
		}
	}
	for _, p := range b.Puncts {
		// Columnar marks carry no trace ID (trace 0): span timelines end
		// at a row→columnar boundary, the per-arc lag accounting does not.
		e.notePunctArrival(n, pb.port, p.Ts, 0)
		if p.Ts == tuple.MaxTime {
			n.eosSeen[pb.port] = true
		}
	}
	if n.colMode {
		n.punctBoundary = false
		op.(ops.ColOperator).ExecCol(b, colCtx)
		// Columnar apply point: the batch ended on an emitted bound with
		// nothing pending — the same quiescence condition as the row loop.
		if n.punctBoundary && n.sincePunct == 0 && n.pendCount == 0 {
			e.maybeApplyReconf(n, op)
		}
		return
	}
	// Boundary: a row operator fed by a columnar arc (possible when a
	// produced batch fans out to mixed consumers). Convert losslessly into
	// the input queue; the scheduling loop runs the operator next.
	tmp := e.pool.Get()
	tmp = b.AppendRows(tmp, &n.mag)
	n.ins[pb.port].PushAll(tmp)
	e.pool.Put(tmp)
	tuple.PutColBatch(b)
	e.shedOverflow(n, ctx)
}

// colAppendTuple decomposes one row-emitted tuple into out arc i's pending
// columnar batch (punctuation becomes a metadata mark). The caller keeps
// ownership of t — its values are copied.
func (e *Engine) colAppendTuple(n *node, i int, t *tuple.Tuple) {
	b := n.colPend[i]
	if b == nil {
		b = tuple.GetColBatch(0) // adopts the first data row's arity
		n.colPend[i] = b
	}
	b.AppendTuple(t)
	n.pendCount++
	if !t.IsPunct() && b.Len() >= int(n.batchSize.Load()) {
		e.flushColArc(n, i)
	}
}

// colAppendBatch merges b into out arc i's pending columnar batch. With
// adopt, ownership of b transfers (it is installed directly when the arc
// has nothing pending, recycled after copying otherwise); without adopt the
// contents are copied and b is left intact for the caller's other arcs.
func (e *Engine) colAppendBatch(n *node, i int, b *tuple.ColBatch, adopt bool) {
	cnt := b.Len() + len(b.Puncts)
	pend := n.colPend[i]
	if pend == nil {
		if adopt {
			n.colPend[i] = b
		} else {
			nb := tuple.GetColBatch(b.NumCols())
			nb.AppendBatch(b)
			n.colPend[i] = nb
		}
	} else {
		pend.AppendBatch(b)
		if adopt {
			tuple.PutColBatch(b)
		}
	}
	n.pendCount += cnt
	if n.colPend[i] != nil && n.colPend[i].Len() >= int(n.batchSize.Load()) {
		e.flushColArc(n, i)
	}
}

// emitCol is the batch analogue of emit: it distributes an operator-emitted
// columnar batch to every out arc — columnar arcs by adoption (last taker)
// or copy, row boundary arcs through a one-time row materialization — and
// applies the flush rules: any punctuation mark flushes all pending output,
// a full arc flushes itself.
func (e *Engine) emitCol(n *node, b *tuple.ColBatch) {
	if len(n.outs) == 0 {
		tuple.PutColBatch(b)
		return
	}
	if n.pendCount == 0 {
		n.pendSince = time.Now()
	}
	hasPunct := b.HasPunct()
	// Quiescence accounting must reflect the batch's internal order, not
	// the order the helpers below run in: after this emission, the data
	// still unbounded is exactly the rows positioned after the last mark.
	// Computed now (b may be adopted or recycled below), stored at the end
	// so the helpers' own bookkeeping is overridden.
	sinceAfter := n.sincePunct + b.Len()
	if hasPunct {
		sinceAfter = b.Len() - b.Puncts[len(b.Puncts)-1].Pos
	}
	for _, p := range b.Puncts {
		e.notePunctOutTs(n, p.Ts)
	}
	colArcs := 0
	for i := range n.outs {
		if n.colArc[i] {
			colArcs++
		}
	}
	if colArcs < len(n.outs) {
		// Row boundary arcs: materialize rows once. With more than one row
		// arc the pointers are shared, which is exactly the fan-out case
		// where the engine has recycling disabled.
		tmp := e.pool.Get()
		tmp = b.AppendRows(tmp, &n.mag)
		for i := range n.outs {
			if n.colArc[i] {
				continue
			}
			for _, t := range tmp {
				e.appendArc(n, i, t, false) // marks were accounted above
			}
		}
		e.pool.Put(tmp)
	}
	seen := 0
	for i := range n.outs {
		if !n.colArc[i] {
			continue
		}
		seen++
		e.colAppendBatch(n, i, b, seen == colArcs)
	}
	if colArcs == 0 {
		tuple.PutColBatch(b)
	}
	n.sincePunct = sinceAfter
	if hasPunct {
		e.flushPending(n)
	}
}

// emitColTo is the batch analogue of emitTo: splitters hand each shard's
// gathered batch to its own arc. Ownership of b transfers.
func (e *Engine) emitColTo(n *node, i int, b *tuple.ColBatch) {
	if !n.colArc[i] {
		// Row boundary (a columnar splitter feeding row-mode shards).
		tmp := e.pool.Get()
		tmp = b.AppendRows(tmp, &n.mag)
		for _, t := range tmp {
			e.appendArc(n, i, t, true)
		}
		e.pool.Put(tmp)
		tuple.PutColBatch(b)
		return
	}
	if n.pendCount == 0 {
		n.pendSince = time.Now()
	}
	hasPunct := b.HasPunct()
	sinceAfter := n.sincePunct + b.Len()
	if hasPunct {
		sinceAfter = b.Len() - b.Puncts[len(b.Puncts)-1].Pos
	}
	for _, p := range b.Puncts {
		e.notePunctOutTs(n, p.Ts)
	}
	e.colAppendBatch(n, i, b, true)
	n.sincePunct = sinceAfter
	if hasPunct {
		e.flushArc(n, i)
	}
}

// flushColArc sends out arc i's pending columnar batch downstream. It is
// the columnar half of flushArc; tuplesSent/tuplesOut count rows plus
// punctuation marks, matching the row path's per-tuple accounting.
func (e *Engine) flushColArc(n *node, i int) {
	b := n.colPend[i]
	if b == nil {
		return
	}
	n.colPend[i] = nil
	cnt := b.Len() + len(b.Puncts)
	if cnt == 0 {
		tuple.PutColBatch(b)
		return
	}
	n.pendCount -= cnt
	e.batchesSent.Add(1)
	e.tuplesSent.Add(uint64(cnt))
	n.obs.batchesOut.Inc()
	n.obs.tuplesOut.Add(uint64(cnt))
	if e.trace != nil {
		e.trace.Emit(metrics.EvBatchFlush, n.name, e.now(), int64(cnt))
	}
	select {
	case n.outs[i].in <- portBatch{port: n.outPorts[i], col: b}:
	case <-e.stop:
		// Stopping: the consumer may already have exited (see flushArc).
		tuple.PutColBatch(b)
	}
}
