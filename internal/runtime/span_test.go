package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// TestEngineSpansEndToEnd runs a traced punctuation through the full graph
// — source, union, sink — and checks the collector reconstructs at least
// one complete source→sink timeline with per-hop latencies.
func TestEngineSpansEndToEnd(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	spans := obs.New(1024)
	e, err := New(g, Options{OnDemandETS: false, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 10; i++ {
		e.Ingest(s1, tuple.NewData(tuple.Time(i*10), tuple.Int(int64(i))))
		e.Ingest(s2, tuple.NewData(tuple.Time(i*10), tuple.Int(int64(-i))))
	}
	// Bounds on both inputs let the TSM union flush and forward punctuation.
	e.Ingest(s1, tuple.NewPunct(100))
	e.Ingest(s2, tuple.NewPunct(100))
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()

	if len(col.snapshot()) == 0 {
		t.Fatal("no output delivered")
	}
	if spans.Traces() == 0 {
		t.Fatal("no traces recorded")
	}
	tls := spans.Timelines(0)
	var complete *obs.Timeline
	for i := range tls {
		if tls[i].Complete {
			complete = &tls[i]
			break
		}
	}
	if complete == nil {
		t.Fatalf("no complete timeline among %d", len(tls))
	}
	if complete.Origin != "s1" && complete.Origin != "s2" {
		t.Errorf("origin = %q, want a source node", complete.Origin)
	}
	if len(complete.Hops) < 2 {
		t.Fatalf("timeline has %d hops, want >= 2 (source and union)", len(complete.Hops))
	}
	// The last hop must be the sink-feeding arc, marked terminal.
	last := complete.Hops[len(complete.Hops)-1]
	if !last.Sink {
		t.Errorf("last hop %q not marked as sink", last.Node)
	}
	if complete.TotalUs < 0 {
		t.Errorf("negative total latency %d", complete.TotalUs)
	}
	for _, h := range complete.Hops[1:] {
		if h.EnqueueAt == 0 {
			t.Errorf("hop %q missing enqueue stamp", h.Node)
		}
	}
	if spans.Dropped() != 0 {
		t.Errorf("unexpected drops: %d", spans.Dropped())
	}
}

// TestSnapshotConcurrentIngest hammers Snapshot's merge path — per-node
// instruments, the shard rollup, and the new per-arc lag histograms — while
// ingest and punctuation traffic is live on several goroutines. Run under
// -race this pins the snapshot read path against the hot write path.
func TestSnapshotConcurrentIngest(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	spans := obs.New(4096)
	e, err := New(g, Options{OnDemandETS: true, Shards: 4, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	if e.ShardPlan() == nil {
		t.Fatal("union was not sharded")
	}
	e.Start()

	const perStream = 300
	var wg sync.WaitGroup
	for _, src := range []*ops.Source{s1, s2} {
		wg.Add(1)
		go func(src *ops.Source) {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				e.Ingest(src, tuple.NewData(tuple.Time(i), tuple.Int(int64(i))))
				if i%50 == 49 {
					e.Ingest(src, tuple.NewPunct(tuple.Time(i)))
				}
			}
		}(src)
	}
	stop := make(chan struct{})
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := e.Snapshot()
			for _, ns := range snap.Nodes {
				if ns.BlockingInput < -1 {
					t.Errorf("node %s blocking input %d", ns.Node, ns.BlockingInput)
				}
				for _, a := range ns.Arcs {
					if a.Port < 0 {
						t.Errorf("node %s arc port %d", ns.Node, a.Port)
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	close(stop)
	snapWg.Wait()

	if len(col.snapshot()) == 0 {
		t.Fatal("no output delivered")
	}
	snap := e.Snapshot()
	if len(snap.ShardTuples) != 4 {
		t.Fatalf("shard rollup = %v, want 4 entries", snap.ShardTuples)
	}
	// Punctuation flowed on every interior arc: some node (the sharded
	// union replicas, or the sink) must carry raised arc watermarks and
	// populated lag reservoirs.
	var sawLag bool
	for _, ns := range snap.Nodes {
		if len(ns.Arcs) == 0 {
			t.Fatalf("node %s snapshot has no arcs", ns.Node)
		}
		for _, a := range ns.Arcs {
			if a.Watermark > tuple.MinTime && a.Lag.Count > 0 {
				sawLag = true
				if a.Lag.Percentile(50) < 0 {
					t.Errorf("%s port %d negative lag p50", ns.Node, a.Port)
				}
			}
		}
	}
	if !sawLag {
		t.Error("no arc recorded watermark lag")
	}
	if spans.Traces() == 0 {
		t.Error("no traces recorded under concurrent ingest")
	}
}
