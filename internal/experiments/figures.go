package experiments

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/tuple"
)

// Series is one named line of a figure: Y values over the X sweep. A series
// that does not depend on X (scenarios A, C, D under a heartbeat-rate sweep)
// repeats its value so every figure is a rectangular table.
type Series struct {
	Name string
	Y    []float64
}

// Figure is one reproduced table/figure: an X axis, its series, and notes.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Notes  []string
}

// CSV renders the figure as comma-separated values (header row, then one
// row per X value) for downstream plotting.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteString("\n")
	for i, x := range f.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Render formats the figure as an aligned text table.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteString("\n")
	for i, x := range f.X {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %16.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// HeartbeatRates is the periodic-ETS sweep used by Figures 7 and 8.
var HeartbeatRates = []float64{0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// repeat fills a constant series across the sweep.
func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// sweepB runs scenario B across the heartbeat rates, applying mod to each
// config, and returns the per-rate results.
func sweepB(mod func(*Config)) []Result {
	out := make([]Result, 0, len(HeartbeatRates))
	for _, r := range HeartbeatRates {
		cfg := Default(ScenarioB)
		cfg.HeartbeatRate = r
		if mod != nil {
			mod(&cfg)
		}
		out = append(out, Run(cfg))
	}
	return out
}

// runScenario runs one non-B scenario with mod applied.
func runScenario(s Scenario, mod func(*Config)) Result {
	cfg := Default(s)
	if mod != nil {
		mod(&cfg)
	}
	return Run(cfg)
}

// Figure7a reproduces Figure 7(a): average output latency (ms, log scale in
// the paper) of scenarios A–D as the periodic-ETS rate sweeps.
func Figure7a() Figure {
	a := runScenario(ScenarioA, nil)
	c := runScenario(ScenarioC, nil)
	d := runScenario(ScenarioD, nil)
	bs := sweepB(nil)
	bY := make([]float64, len(bs))
	for i, r := range bs {
		bY[i] = r.MeanLatency.Millis()
	}
	n := len(HeartbeatRates)
	return Figure{
		ID:     "fig7a",
		Title:  "Average output latency, union query, 50/0.05 t/s Poisson",
		XLabel: "punct/s (B)",
		YLabel: "mean latency (ms)",
		X:      HeartbeatRates,
		Series: []Series{
			{Name: "A no-ETS", Y: repeat(a.MeanLatency.Millis(), n)},
			{Name: "B periodic", Y: bY},
			{Name: "C on-demand", Y: repeat(c.MeanLatency.Millis(), n)},
			{Name: "D latent", Y: repeat(d.MeanLatency.Millis(), n)},
		},
		Notes: []string{
			"paper: B drops with rate but never reaches C; C is ~4 orders below A and indistinguishable from D at this scale",
		},
	}
}

// Figure7b reproduces Figure 7(b): the zoomed C-vs-D gap (the paper reports
// about 0.1 ms).
func Figure7b() Figure {
	c := runScenario(ScenarioC, nil)
	d := runScenario(ScenarioD, nil)
	return Figure{
		ID:     "fig7b",
		Title:  "Zoom: on-demand ETS vs latent-timestamp lower bound",
		XLabel: "point",
		YLabel: "mean latency (ms)",
		X:      []float64{0},
		Series: []Series{
			{Name: "C on-demand", Y: []float64{c.MeanLatency.Millis()}},
			{Name: "D latent", Y: []float64{d.MeanLatency.Millis()}},
			{Name: "gap C-D", Y: []float64{c.MeanLatency.Millis() - d.MeanLatency.Millis()}},
		},
		Notes: []string{"paper: gap ≈ 0.1 ms, four orders of magnitude below A"},
	}
}

// IdleWaitingTable reproduces the §6 idle-waiting measurements: the share
// of time the union spends idle-waiting (paper: A≈99%, B@100/s≈15%, C<0.1%).
func IdleWaitingTable() Figure {
	a := runScenario(ScenarioA, nil)
	c := runScenario(ScenarioC, nil)
	b100 := Run(func() Config {
		cfg := Default(ScenarioB)
		cfg.HeartbeatRate = 100
		return cfg
	}())
	return Figure{
		ID:     "idle",
		Title:  "Union idle-waiting share of total time",
		XLabel: "point",
		YLabel: "idle-waiting (%)",
		X:      []float64{0},
		Series: []Series{
			{Name: "A no-ETS", Y: []float64{a.IdleFraction * 100}},
			{Name: "B @100/s", Y: []float64{b100.IdleFraction * 100}},
			{Name: "C on-demand", Y: []float64{c.IdleFraction * 100}},
		},
		Notes: []string{"paper: A 99%, B@100/s 15%, C <0.1%"},
	}
}

// Figure8a reproduces Figure 8(a): peak total queue size under the 50/0.05
// rates as the periodic rate sweeps.
func Figure8a() Figure {
	a := runScenario(ScenarioA, nil)
	c := runScenario(ScenarioC, nil)
	bs := sweepB(nil)
	bY := make([]float64, len(bs))
	for i, r := range bs {
		bY[i] = float64(r.PeakQueue)
	}
	n := len(HeartbeatRates)
	return Figure{
		ID:     "fig8a",
		Title:  "Peak total queue size (tuples), union query, 50/0.05 t/s",
		XLabel: "punct/s (B)",
		YLabel: "peak tuples",
		X:      HeartbeatRates,
		Series: []Series{
			{Name: "A no-ETS", Y: repeat(float64(a.PeakQueue), n)},
			{Name: "B periodic", Y: bY},
			{Name: "C on-demand", Y: repeat(float64(c.PeakQueue), n)},
		},
		Notes: []string{
			"paper: A in the thousands; C more than 2 orders lower; B falls with rate, then rises as punctuation occupies memory",
		},
	}
}

// Figure8b reproduces Figure 8(b): the high-rate memory uptick of periodic
// ETS under bursty data traffic — punctuation tuples pile up while bursts
// of data tuples are being processed.
func Figure8b() Figure {
	bursty := func(c *Config) { c.Bursty = true }
	a := runScenario(ScenarioA, bursty)
	c := runScenario(ScenarioC, bursty)
	bs := sweepB(bursty)
	bY := make([]float64, len(bs))
	for i, r := range bs {
		bY[i] = float64(r.PeakQueue)
	}
	n := len(HeartbeatRates)
	return Figure{
		ID:     "fig8b",
		Title:  "Peak total queue size, bursty fast stream (10x bursts, same average rate)",
		XLabel: "punct/s (B)",
		YLabel: "peak tuples",
		X:      HeartbeatRates,
		Series: []Series{
			{Name: "A no-ETS", Y: repeat(float64(a.PeakQueue), n)},
			{Name: "B periodic", Y: bY},
			{Name: "C on-demand", Y: repeat(float64(c.PeakQueue), n)},
		},
		Notes: []string{
			"paper: high punctuation rates eventually increase peak memory during data bursts",
		},
	}
}

// TSMExperiment reproduces the §4.1 claim: with coarse (simultaneous)
// timestamps, the Figure-1 rules strand tuples and idle-wait; the TSM
// registers + relaxed more condition eliminate it. We compare mean latency
// on a coarse-timestamp variant of the union workload.
func TSMExperiment() Figure {
	// Coarse timestamps: external timestamps truncated to 100ms buckets
	// (with a matching skew bound so the ETS estimator stays sound), and
	// equal stream rates so nearly every bucket holds simultaneous tuples
	// on both inputs.
	coarse := func(c *Config) {
		c.External = true
		c.CoarseTs = 100 * tuple.Millisecond
		c.Delta = 100 * tuple.Millisecond
		c.Rate2 = 50
	}
	run := func(basic bool) Result {
		cfg := Default(ScenarioC)
		coarse(&cfg)
		cfg.BasicIWP = basic
		return Run(cfg)
	}
	withTSM := run(false)
	withBasic := run(true)
	return Figure{
		ID:     "tsm",
		Title:  "Simultaneous tuples: Figure-1 rules vs TSM registers (coarse 100ms timestamps, 50/50 t/s)",
		XLabel: "point",
		YLabel: "ms / %",
		X:      []float64{0},
		Series: []Series{
			{Name: "basic lat(ms)", Y: []float64{withBasic.MeanLatency.Millis()}},
			{Name: "TSM lat(ms)", Y: []float64{withTSM.MeanLatency.Millis()}},
			{Name: "basic idle%", Y: []float64{withBasic.IdleFraction * 100}},
			{Name: "TSM idle%", Y: []float64{withTSM.IdleFraction * 100}},
		},
		Notes: []string{
			"§4.1: the Figure-1 rules strand equal-timestamp tuples and idle-wait almost permanently; TSM registers + the relaxed more condition remove that cause",
		},
	}
}

// JoinExperiment (E7) repeats the A/B/C/D comparison with a window join in
// place of the union.
func JoinExperiment() Figure {
	mod := func(c *Config) {
		c.Query = JoinQuery
		c.Rate2 = 0.05
	}
	a := runScenario(ScenarioA, mod)
	c := runScenario(ScenarioC, mod)
	d := runScenario(ScenarioD, mod)
	b := Run(func() Config {
		cfg := Default(ScenarioB)
		mod(&cfg)
		cfg.HeartbeatRate = 10
		return cfg
	}())
	return Figure{
		ID:     "join",
		Title:  "Window join (2s window): latency and memory across scenarios",
		XLabel: "point",
		YLabel: "ms / tuples",
		X:      []float64{0},
		Series: []Series{
			{Name: "A lat(ms)", Y: []float64{a.MeanLatency.Millis()}},
			{Name: "B@10 lat(ms)", Y: []float64{b.MeanLatency.Millis()}},
			{Name: "C lat(ms)", Y: []float64{c.MeanLatency.Millis()}},
			{Name: "D lat(ms)", Y: []float64{d.MeanLatency.Millis()}},
			{Name: "A peakQ", Y: []float64{float64(a.PeakQueue)}},
			{Name: "C peakQ", Y: []float64{float64(c.PeakQueue)}},
		},
		Notes: []string{"§2/§4: join inherits the union's idle-waiting problem and its ETS cure"},
	}
}

// ExternalExperiment (E8) exercises external timestamps with a skew bound:
// on-demand ETS uses the t + τ − δ estimator of §5.
func ExternalExperiment() Figure {
	deltas := []float64{0, 10, 50, 100, 500} // ms
	var lat []float64
	var ok []float64
	for _, dm := range deltas {
		cfg := Default(ScenarioC)
		cfg.External = true
		cfg.Delta = tuple.Time(dm * float64(tuple.Millisecond))
		r := Run(cfg)
		lat = append(lat, r.MeanLatency.Millis())
		ok = append(ok, float64(r.Outputs))
	}
	return Figure{
		ID:     "ext",
		Title:  "External timestamps: on-demand ETS with skew bound δ (t + τ − δ)",
		XLabel: "δ (ms)",
		YLabel: "mean latency (ms)",
		X:      deltas,
		Series: []Series{
			{Name: "C lat(ms)", Y: lat},
			{Name: "outputs", Y: ok},
		},
		Notes: []string{"§5: larger skew bounds delay the ETS and raise latency proportionally"},
	}
}

// AblationBacktrack (AB1) compares blocking-input backtracking with
// first-predecessor backtracking under on-demand ETS.
func AblationBacktrack() Figure {
	good := runScenario(ScenarioC, nil)
	bad := runScenario(ScenarioC, func(c *Config) { c.BacktrackFirstPred = true })
	return Figure{
		ID:     "ab-backtrack",
		Title:  "Backtrack target: blocking input (§3.2) vs always-first-pred",
		XLabel: "point",
		YLabel: "mean latency (ms)",
		X:      []float64{0},
		Series: []Series{
			{Name: "blocking-input", Y: []float64{good.MeanLatency.Millis()}},
			{Name: "first-pred", Y: []float64{bad.MeanLatency.Millis()}},
		},
		Notes: []string{"misdirected backtracking sends ETS demand to the wrong source"},
	}
}

// AblationDedup (AB2) measures punctuation deduplication.
func AblationDedup() Figure {
	rate := 100.0
	on := Run(func() Config {
		c := Default(ScenarioB)
		c.HeartbeatRate = rate
		c.HeartbeatBoth = true
		return c
	}())
	off := Run(func() Config {
		c := Default(ScenarioB)
		c.HeartbeatRate = rate
		c.HeartbeatBoth = true
		c.NoDedupPunct = true
		return c
	}())
	return Figure{
		ID:     "ab-dedup",
		Title:  "Punctuation dedup at the union (B @100/s on both streams)",
		XLabel: "point",
		YLabel: "steps / peakQ",
		X:      []float64{0},
		Series: []Series{
			{Name: "dedup steps", Y: []float64{float64(on.Steps)}},
			{Name: "no-dedup steps", Y: []float64{float64(off.Steps)}},
			{Name: "dedup peakQ", Y: []float64{float64(on.PeakQueue)}},
			{Name: "no-dedup peakQ", Y: []float64{float64(off.PeakQueue)}},
		},
		Notes: []string{"forwarding every punct multiplies downstream work"},
	}
}

// AblationScheduling (AB3) compares DFS with round-robin scheduling under
// on-demand ETS.
func AblationScheduling() Figure {
	dfs := runScenario(ScenarioC, nil)
	rr := runScenario(ScenarioC, func(c *Config) { c.Strategy = exec.RoundRobin })
	gq := runScenario(ScenarioC, func(c *Config) { c.Strategy = exec.GreedyQueue })
	return Figure{
		ID:     "ab-sched",
		Title:  "Scheduling: DFS (paper) vs round-robin vs greedy-queue, on-demand ETS",
		XLabel: "point",
		YLabel: "ms / tuples",
		X:      []float64{0},
		Series: []Series{
			{Name: "DFS lat(ms)", Y: []float64{dfs.MeanLatency.Millis()}},
			{Name: "RR lat(ms)", Y: []float64{rr.MeanLatency.Millis()}},
			{Name: "GQ lat(ms)", Y: []float64{gq.MeanLatency.Millis()}},
			{Name: "DFS peakQ", Y: []float64{float64(dfs.PeakQueue)}},
			{Name: "RR peakQ", Y: []float64{float64(rr.PeakQueue)}},
			{Name: "GQ peakQ", Y: []float64{float64(gq.PeakQueue)}},
		},
		Notes: []string{"DFS expedites tuples toward the sink; the alternatives pay scan overhead"},
	}
}

// AblationCost (AB4) sweeps the per-step CPU cost.
func AblationCost() Figure {
	costs := []float64{5, 20, 80}
	var cLat, dLat []float64
	for _, us := range costs {
		c := runScenario(ScenarioC, func(cf *Config) { cf.CostPerStep = tuple.Time(us) })
		d := runScenario(ScenarioD, func(cf *Config) { cf.CostPerStep = tuple.Time(us) })
		cLat = append(cLat, c.MeanLatency.Millis())
		dLat = append(dLat, d.MeanLatency.Millis())
	}
	return Figure{
		ID:     "ab-cost",
		Title:  "Cost-model sensitivity: per-step CPU cost",
		XLabel: "µs/step",
		YLabel: "mean latency (ms)",
		X:      costs,
		Series: []Series{
			{Name: "C on-demand", Y: cLat},
			{Name: "D latent", Y: dLat},
		},
		Notes: []string{"the C–D gap scales with the cost of generating and propagating the ETS"},
	}
}

// AblationSkew (AB5) sweeps the sparse stream's rate: as the rates converge
// the idle-waiting problem (and on-demand ETS's advantage) shrinks.
func AblationSkew() Figure {
	rates := []float64{0.05, 0.5, 5, 50}
	var aLat, cLat []float64
	for _, r2 := range rates {
		a := runScenario(ScenarioA, func(c *Config) { c.Rate2 = r2 })
		c := runScenario(ScenarioC, func(c *Config) { c.Rate2 = r2 })
		aLat = append(aLat, a.MeanLatency.Millis())
		cLat = append(cLat, c.MeanLatency.Millis())
	}
	return Figure{
		ID:     "ab-skew",
		Title:  "Rate diversity: sparse-stream rate sweep (fast stream fixed at 50/s)",
		XLabel: "slow rate (t/s)",
		YLabel: "mean latency (ms)",
		X:      rates,
		Series: []Series{
			{Name: "A no-ETS", Y: aLat},
			{Name: "C on-demand", Y: cLat},
		},
		Notes: []string{"the paper's motivation: the best case for periodic ETS needs matched rates; on-demand adapts"},
	}
}

// Entry pairs a figure id with its generator.
type Entry struct {
	ID       string
	Generate func() Figure
}

// Registry lists every reproduced figure, in presentation order. The first
// five entries are the paper's own artifacts; the rest are the §4.1/§5
// claims and the DESIGN.md ablations.
func Registry() []Entry {
	return []Entry{
		{"fig7a", Figure7a},
		{"fig7b", Figure7b},
		{"idle", IdleWaitingTable},
		{"fig8a", Figure8a},
		{"fig8b", Figure8b},
		{"tsm", TSMExperiment},
		{"join", JoinExperiment},
		{"ext", ExternalExperiment},
		{"ab-backtrack", AblationBacktrack},
		{"ab-dedup", AblationDedup},
		{"ab-sched", AblationScheduling},
		{"ab-cost", AblationCost},
		{"ab-skew", AblationSkew},
		{"rt", RuntimeFigure},
	}
}

// ByID returns the figure generator with the given id, or nil.
func ByID(id string) func() Figure {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Generate
		}
	}
	return nil
}

// IDs lists every figure id in presentation order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}
