package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFastFigures executes the quick figure generators end to end (the full
// sweeps run via cmd/etsbench; the slowest ones are exercised there and by
// the bench targets). Each must produce a rectangular table with all its
// series populated.
func TestFastFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation in -short mode")
	}
	for _, id := range []string{"fig7b", "idle", "join", "ab-cost", "ab-dedup", "ab-skew", "ab-sched"} {
		id := id
		t.Run(id, func(t *testing.T) {
			gen := ByID(id)
			if gen == nil {
				t.Fatalf("no generator for %q", id)
			}
			f := gen()
			if f.ID != id {
				t.Errorf("figure id = %q", f.ID)
			}
			if len(f.X) == 0 || len(f.Series) == 0 {
				t.Fatalf("empty figure: %+v", f)
			}
			for _, s := range f.Series {
				if len(s.Y) != len(f.X) {
					t.Errorf("series %q has %d points for %d X values", s.Name, len(s.Y), len(f.X))
				}
			}
			out := f.Render()
			if !strings.Contains(out, f.Title) {
				t.Error("render lacks title")
			}
			csv := f.CSV()
			lines := strings.Split(strings.TrimSpace(csv), "\n")
			if len(lines) != len(f.X)+1 {
				t.Errorf("CSV rows = %d, want %d", len(lines), len(f.X)+1)
			}
		})
	}
}

// TestFigureCSVEscaping covers the CSV escaper.
func TestFigureCSVEscaping(t *testing.T) {
	f := Figure{
		XLabel: "x,label",
		X:      []float64{1},
		Series: []Series{{Name: `quo"ted`, Y: []float64{2}}},
	}
	csv := f.CSV()
	if !strings.Contains(csv, `"x,label"`) || !strings.Contains(csv, `"quo""ted"`) {
		t.Errorf("escaping wrong: %q", csv)
	}
}

// TestRunRuntimeSmoke exercises the real-time runtime experiment briefly;
// absolute timings are wall-clock noisy, so only liveness is asserted.
func TestRunRuntimeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time experiment in -short mode")
	}
	r := RunRuntime(500, 5, 300*time.Millisecond, true, 1)
	if r.Outputs == 0 {
		t.Fatal("runtime experiment produced nothing")
	}
	if r.ETS == 0 {
		t.Error("no demand-driven ETS under a 100:1 skew")
	}
}
