package experiments

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tuple"
)

// RuntimeResult holds the metrics of one concurrent-runtime run.
type RuntimeResult struct {
	MeanLatency tuple.Time
	P99Latency  tuple.Time
	Outputs     int
	ETS         uint64
}

// RunRuntime executes the paper's union scenario on the concurrent
// goroutine engine in *real time*, with the rate skew compressed so the run
// finishes in a few wall-clock seconds: a fast stream at fastRate t/s and a
// sparse one at slowRate t/s for the given duration. onDemand toggles
// demand-driven ETS (scenario C vs scenario A semantics).
//
// Real-time runs are inherently noisy; the figure built on this compares
// orders of magnitude, which survive scheduling jitter.
func RunRuntime(fastRate, slowRate float64, dur time.Duration, onDemand bool, seed int64) RuntimeResult {
	g := graph.New("rt")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	fast := ops.NewSource("fast", sch, 0)
	slow := ops.NewSource("slow", sch, 0)
	nf := g.AddNode(fast)
	ns := g.AddNode(slow)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), nf, ns)

	lat := metrics.NewLatency()
	var mu sync.Mutex
	g.AddNode(ops.NewSink("k", func(t *tuple.Tuple, now tuple.Time) {
		mu.Lock()
		lat.Observe(now - t.Ts)
		mu.Unlock()
	}), u)

	e, err := runtime.New(g, runtime.Options{OnDemandETS: onDemand, ChannelDepth: 4096})
	if err != nil {
		panic(err)
	}
	e.Start()

	var wg sync.WaitGroup
	produce := func(src *ops.Source, rate float64, seed int64) {
		defer wg.Done()
		r := rand.New(rand.NewSource(seed))
		deadline := time.Now().Add(dur)
		i := int64(0)
		for time.Now().Before(deadline) {
			gap := time.Duration(r.ExpFloat64() / rate * float64(time.Second))
			if gap > time.Until(deadline) {
				break
			}
			time.Sleep(gap)
			e.Ingest(src, tuple.NewData(0, tuple.Int(i)))
			i++
		}
		e.CloseStream(src)
	}
	wg.Add(2)
	go produce(fast, fastRate, seed)
	go produce(slow, slowRate, seed+1)
	wg.Wait()
	e.Wait()

	mu.Lock()
	defer mu.Unlock()
	return RuntimeResult{
		MeanLatency: lat.Mean(),
		P99Latency:  lat.Percentile(99),
		Outputs:     lat.Count(),
		ETS:         e.ETSGenerated(),
	}
}

// RuntimeFigure compares no-ETS against demand-driven ETS on the concurrent
// engine (id "rt"). The rate skew is 500:1 over two wall seconds, so the
// no-ETS case idle-waits for up to the whole run while the on-demand case
// stays at sub-millisecond latency.
func RuntimeFigure() Figure {
	none := RunRuntime(500, 1, 2*time.Second, false, 99)
	demand := RunRuntime(500, 1, 2*time.Second, true, 99)
	return Figure{
		ID:     "rt",
		Title:  "Concurrent runtime (real time, 500/1 t/s for 2s): demand-driven ETS",
		XLabel: "point",
		YLabel: "ms",
		X:      []float64{0},
		Series: []Series{
			{Name: "none mean(ms)", Y: []float64{none.MeanLatency.Millis()}},
			{Name: "none p99(ms)", Y: []float64{none.P99Latency.Millis()}},
			{Name: "demand mean(ms)", Y: []float64{demand.MeanLatency.Millis()}},
			{Name: "demand p99(ms)", Y: []float64{demand.P99Latency.Millis()}},
		},
		Notes: []string{
			"goroutine engine: backtracking becomes an upstream demand signal; wall-clock noise applies",
		},
	}
}
