package experiments

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/tuple"
)

// short trims a config for test speed while keeping enough slow-stream
// arrivals for stable shape comparisons.
func short(cfg Config) Config {
	cfg.Horizon = 600 * tuple.Second
	cfg.Warmup = 50 * tuple.Second
	return cfg
}

func runShort(s Scenario, mod func(*Config)) Result {
	cfg := short(Default(s))
	if mod != nil {
		mod(&cfg)
	}
	return Run(cfg)
}

// TestScenarioOrdering asserts the paper's headline result: latency ordering
// A ≫ B ≫ C ≥ D with the documented magnitudes.
func TestScenarioOrdering(t *testing.T) {
	a := runShort(ScenarioA, nil)
	b := runShort(ScenarioB, func(c *Config) { c.HeartbeatRate = 10 })
	c := runShort(ScenarioC, nil)
	d := runShort(ScenarioD, nil)

	if !(a.MeanLatency > b.MeanLatency && b.MeanLatency > c.MeanLatency && c.MeanLatency >= d.MeanLatency) {
		t.Fatalf("ordering violated: A=%v B=%v C=%v D=%v",
			a.MeanLatency, b.MeanLatency, c.MeanLatency, d.MeanLatency)
	}
	// "several orders of magnitude": A/C ≥ 1000 (paper: ~4 orders).
	if ratio := float64(a.MeanLatency) / float64(c.MeanLatency); ratio < 1000 {
		t.Errorf("A/C latency ratio = %.0f, want ≥ 1000", ratio)
	}
	// C within ~0.2ms of D (paper: ~0.1ms).
	if gap := c.MeanLatency - d.MeanLatency; gap > 300*tuple.Microsecond {
		t.Errorf("C-D gap = %v, want ≲ 0.3ms", gap)
	}
	// All scenarios deliver essentially the same data tuples.
	if c.Outputs == 0 || d.Outputs == 0 {
		t.Fatal("no outputs")
	}
	if diff := c.Outputs - d.Outputs; diff > 1 || diff < -1 {
		t.Errorf("output counts diverge: C=%d D=%d", c.Outputs, d.Outputs)
	}
}

// TestIdleWaitingShares asserts the §6 idle-waiting numbers: A≈99%,
// B@100/s well below A (paper 15%), C below 0.1%.
func TestIdleWaitingShares(t *testing.T) {
	a := runShort(ScenarioA, nil)
	b := runShort(ScenarioB, func(c *Config) { c.HeartbeatRate = 100 })
	c := runShort(ScenarioC, nil)
	if a.IdleFraction < 0.95 {
		t.Errorf("A idle = %.2f%%, want ≥ 95%%", a.IdleFraction*100)
	}
	if b.IdleFraction > 0.5 || b.IdleFraction >= a.IdleFraction {
		t.Errorf("B@100 idle = %.2f%%, want well below A", b.IdleFraction*100)
	}
	if c.IdleFraction > 0.001 {
		t.Errorf("C idle = %.4f%%, want < 0.1%%", c.IdleFraction*100)
	}
}

// TestPeakQueueShapes asserts the Figure-8 memory result: A in the
// thousands, C more than two orders lower, and B's non-monotone curve.
func TestPeakQueueShapes(t *testing.T) {
	a := runShort(ScenarioA, nil)
	c := runShort(ScenarioC, nil)
	if a.PeakQueue < 500 {
		t.Errorf("A peak queue = %d, expected hundreds-to-thousands", a.PeakQueue)
	}
	if c.PeakQueue*100 > a.PeakQueue {
		t.Errorf("C peak (%d) not ≥2 orders below A (%d)", c.PeakQueue, a.PeakQueue)
	}
	bLow := runShort(ScenarioB, func(cf *Config) { cf.HeartbeatRate = 0.2 })
	bMid := runShort(ScenarioB, func(cf *Config) { cf.HeartbeatRate = 10 })
	bHigh := runShort(ScenarioB, func(cf *Config) { cf.HeartbeatRate = 1000 })
	if !(bMid.PeakQueue < bLow.PeakQueue) {
		t.Errorf("B peak should fall from %d (0.2/s) to %d (10/s)", bLow.PeakQueue, bMid.PeakQueue)
	}
	if !(bHigh.PeakQueue > bMid.PeakQueue) {
		t.Errorf("B peak should rise again at high rates: mid=%d high=%d", bMid.PeakQueue, bHigh.PeakQueue)
	}
}

// TestPeriodicLatencyMonotone asserts Figure 7(a)'s B line: latency falls as
// the heartbeat rate rises, but never beats on-demand.
func TestPeriodicLatencyMonotone(t *testing.T) {
	c := runShort(ScenarioC, nil)
	prev := tuple.MaxTime
	for _, rate := range []float64{0.5, 2, 10, 50, 200} {
		b := runShort(ScenarioB, func(cf *Config) { cf.HeartbeatRate = rate })
		if b.MeanLatency >= prev {
			t.Errorf("B latency not decreasing at %g/s: %v ≥ %v", rate, b.MeanLatency, prev)
		}
		if b.MeanLatency <= c.MeanLatency {
			t.Errorf("B@%g/s (%v) beat on-demand (%v)", rate, b.MeanLatency, c.MeanLatency)
		}
		prev = b.MeanLatency
	}
}

// TestOnDemandETSVolume asserts on-demand generation is proportional to the
// demand (roughly one per fast-stream tuple), not to time or punct rate.
func TestOnDemandETSVolume(t *testing.T) {
	c := runShort(ScenarioC, nil)
	perOutput := float64(c.ETSGenerated) / float64(c.Outputs)
	if perOutput < 0.5 || perOutput > 3 {
		t.Errorf("ETS per output = %.2f (ets=%d, out=%d), want ≈1",
			perOutput, c.ETSGenerated, c.Outputs)
	}
}

// TestSimultaneousTuplesTSMvsBasic asserts the §4.1 claim on coarse
// timestamps: the TSM rules beat the Figure-1 rules on latency.
func TestSimultaneousTuplesTSMvsBasic(t *testing.T) {
	coarse := func(c *Config) {
		c.External = true
		c.CoarseTs = 100 * tuple.Millisecond
		c.Delta = 100 * tuple.Millisecond
		c.Rate2 = 50
	}
	tsm := runShort(ScenarioC, coarse)
	basic := runShort(ScenarioC, func(c *Config) { coarse(c); c.BasicIWP = true })
	if tsm.MeanLatency >= basic.MeanLatency {
		t.Errorf("TSM (%v) should beat basic rules (%v) with simultaneous tuples",
			tsm.MeanLatency, basic.MeanLatency)
	}
	// The §4.1 pathology: the Figure-1 rules idle-wait almost permanently
	// on equal-timestamp workloads; the TSM rules mostly eliminate it.
	if basic.IdleFraction < 0.9 {
		t.Errorf("basic rules idle = %.1f%%, expected ≥ 90%%", basic.IdleFraction*100)
	}
	if tsm.IdleFraction > basic.IdleFraction/2 {
		t.Errorf("TSM idle (%.1f%%) should be far below basic (%.1f%%)",
			tsm.IdleFraction*100, basic.IdleFraction*100)
	}
	// Output counts match up to in-flight tuples at the horizon cut-off.
	if diff := tsm.Outputs - basic.Outputs; diff < -10 {
		t.Errorf("TSM delivered %d fewer tuples than basic (%d vs %d)",
			-diff, tsm.Outputs, basic.Outputs)
	}
}

// TestJoinScenarios asserts E7: the join inherits the union's behaviour.
func TestJoinScenarios(t *testing.T) {
	mod := func(c *Config) { c.Query = JoinQuery }
	a := runShort(ScenarioA, mod)
	c := runShort(ScenarioC, mod)
	if float64(a.MeanLatency) < 100*float64(c.MeanLatency) {
		t.Errorf("join: A (%v) should be ≫ C (%v)", a.MeanLatency, c.MeanLatency)
	}
	if c.PeakQueue*10 > a.PeakQueue {
		t.Errorf("join: C peak (%d) should be far below A (%d)", c.PeakQueue, a.PeakQueue)
	}
}

// TestExternalSkewBound asserts E8: latency grows with δ (the ETS lags the
// clock by the skew bound) and no outputs are lost.
func TestExternalSkewBound(t *testing.T) {
	base := runShort(ScenarioC, func(c *Config) { c.External = true; c.Delta = 0 })
	far := runShort(ScenarioC, func(c *Config) {
		c.External = true
		c.Delta = 500 * tuple.Millisecond
	})
	if far.MeanLatency <= base.MeanLatency {
		t.Errorf("δ=500ms latency (%v) should exceed δ=0 (%v)", far.MeanLatency, base.MeanLatency)
	}
	if far.Outputs == 0 || base.Outputs == 0 {
		t.Fatal("no outputs under external timestamps")
	}
}

// TestAblationBacktrackTarget asserts AB1: first-pred backtracking ruins
// on-demand ETS.
func TestAblationBacktrackTarget(t *testing.T) {
	good := runShort(ScenarioC, nil)
	bad := runShort(ScenarioC, func(c *Config) { c.BacktrackFirstPred = true })
	if float64(bad.MeanLatency) < 10*float64(good.MeanLatency) {
		t.Errorf("first-pred (%v) should be ≫ blocking-input (%v)",
			bad.MeanLatency, good.MeanLatency)
	}
}

// TestAblationScheduling asserts AB3: both strategies deliver, DFS does not
// lose to round-robin on latency.
func TestAblationScheduling(t *testing.T) {
	dfs := runShort(ScenarioC, nil)
	rr := runShort(ScenarioC, func(c *Config) { c.Strategy = exec.RoundRobin })
	if rr.Outputs == 0 {
		t.Fatal("round-robin delivered nothing")
	}
	if dfs.MeanLatency > rr.MeanLatency*2 {
		t.Errorf("DFS (%v) much worse than RR (%v)", dfs.MeanLatency, rr.MeanLatency)
	}
}

// TestDeterminism asserts simulations are reproducible from their seed.
func TestDeterminism(t *testing.T) {
	r1 := runShort(ScenarioC, nil)
	r2 := runShort(ScenarioC, nil)
	if r1.MeanLatency != r2.MeanLatency || r1.PeakQueue != r2.PeakQueue ||
		r1.Outputs != r2.Outputs || r1.Steps != r2.Steps {
		t.Errorf("non-deterministic: %+v vs %+v", r1, r2)
	}
	r3 := runShort(ScenarioC, func(c *Config) { c.Seed = 777 })
	if r3.Steps == r1.Steps && r3.MeanLatency == r1.MeanLatency {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestRegistry asserts the figure registry is consistent.
func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Fatal("IDs and Registry disagree")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate figure id %q", id)
		}
		seen[id] = true
		if ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("ByID must return nil for unknown ids")
	}
	for _, want := range []string{"fig7a", "fig7b", "idle", "fig8a", "fig8b"} {
		if !seen[want] {
			t.Errorf("missing paper artifact %q", want)
		}
	}
}

// TestScenarioStrings covers the scenario stringer.
func TestScenarioStrings(t *testing.T) {
	for s, want := range map[Scenario]string{
		ScenarioA: "A(no-ETS)", ScenarioB: "B(periodic)",
		ScenarioC: "C(on-demand)", ScenarioD: "D(latent)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

// TestFigureRender sanity-checks table rendering without running sweeps.
func TestFigureRender(t *testing.T) {
	f := Figure{
		ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		X:      []float64{1, 2},
		Series: []Series{{Name: "s", Y: []float64{3}}},
		Notes:  []string{"n"},
	}
	out := f.Render()
	for _, frag := range []string{"== x: t ==", "note: n", "-"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q in:\n%s", frag, out)
		}
	}
}

// TestArcDisciplineAllScenarios runs every scenario (and the ablation
// variants that alter execution order) with the validator wired in: the
// output arc must be timestamp-ordered with sound punctuation in all of
// them. This is the whole-system invariant behind the paper's model.
func TestArcDisciplineAllScenarios(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"A", func(c *Config) { c.Scenario = ScenarioA }},
		{"B", func(c *Config) { c.Scenario = ScenarioB; c.HeartbeatRate = 50 }},
		{"C", func(c *Config) {}},
		{"C-join", func(c *Config) { c.Query = JoinQuery }},
		{"C-rr", func(c *Config) { c.Strategy = exec.RoundRobin }},
		{"C-greedy", func(c *Config) { c.Strategy = exec.GreedyQueue }},
		{"C-nodedup", func(c *Config) { c.NoDedupPunct = true }},
		{"C-external", func(c *Config) { c.External = true; c.Delta = 50 * tuple.Millisecond }},
		{"C-bursty", func(c *Config) { c.Bursty = true }},
	}
	for _, m := range mods {
		m := m
		t.Run(m.name, func(t *testing.T) {
			cfg := short(Default(ScenarioC))
			cfg.Horizon = 300 * tuple.Second
			m.mod(&cfg)
			cfg.Validate = true
			r := Run(cfg)
			if r.OrderViolations != 0 {
				t.Fatalf("%d arc-discipline violations", r.OrderViolations)
			}
			if r.Outputs == 0 {
				t.Fatal("no outputs")
			}
		})
	}
}
