// Package experiments assembles the paper's evaluation (§6): the Figure-4
// query graph (two selections feeding a union), the 50 / 0.05 tuple-per-
// second Poisson workload, the four timestamp-management scenarios
//
//	A  internally timestamped, no ETS
//	B  internally timestamped, periodic ETS (Gigascope-style heartbeats)
//	C  internally timestamped, on-demand ETS (the paper's contribution)
//	D  latent timestamps (the no-idle-waiting lower bound)
//
// and the parameter sweeps behind every figure, table and ablation listed in
// DESIGN.md. Each experiment returns a Figure of named series that
// cmd/etsbench renders and bench_test.go asserts shape properties on.
package experiments

import (
	"fmt"

	"repro/internal/ets"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/tuple"
	"repro/internal/window"
)

// Scenario names the four timestamp-management configurations of §6.
type Scenario uint8

const (
	// ScenarioA uses internal timestamps and never generates ETS.
	ScenarioA Scenario = iota
	// ScenarioB uses internal timestamps and periodic heartbeats on the
	// sparse stream.
	ScenarioB
	// ScenarioC uses internal timestamps and on-demand ETS.
	ScenarioC
	// ScenarioD uses latent timestamps.
	ScenarioD
)

func (s Scenario) String() string {
	switch s {
	case ScenarioA:
		return "A(no-ETS)"
	case ScenarioB:
		return "B(periodic)"
	case ScenarioC:
		return "C(on-demand)"
	case ScenarioD:
		return "D(latent)"
	default:
		return "?"
	}
}

// QueryKind selects the query graph shape.
type QueryKind uint8

const (
	// UnionQuery is the Figure-4 graph: two filtered streams unioned.
	UnionQuery QueryKind = iota
	// JoinQuery replaces the union with a symmetric window join (E7).
	JoinQuery
)

// Config parameterizes one simulation run.
type Config struct {
	Scenario Scenario
	Query    QueryKind

	// Rate1/Rate2 are average arrival rates (tuples per second) on the
	// fast and sparse stream. Paper defaults: 50 and 0.05.
	Rate1, Rate2 float64
	// HeartbeatRate (scenario B) is the periodic-ETS injection rate, in
	// punctuation tuples per second, applied to the sparse stream.
	HeartbeatRate float64
	// HeartbeatBoth also heartbeats the fast stream (the paper injects
	// into the sparser stream; enabling this matches systems that
	// heartbeat everything).
	HeartbeatBoth bool
	// Selectivity is the fraction of tuples the per-stream selections
	// pass (paper: 0.95).
	Selectivity float64

	// Bursty replaces the fast stream's Poisson process with an on-off
	// bursty process of the same average rate (E5).
	Bursty bool

	// External switches both streams to external timestamps with skew
	// bound Delta (E8); timestamps lag arrival by a deterministic skew.
	External bool
	Delta    tuple.Time
	// CoarseTs quantizes external timestamps down to multiples of the
	// given granularity, producing the simultaneous tuples of §4.1 (E6).
	// Delta must be at least CoarseTs to keep the skew bound sound.
	CoarseTs tuple.Time

	// BasicIWP runs the IWP operator with the Figure-1 rules instead of
	// the Figure-6 TSM rules (E6: the simultaneous-tuples comparison).
	BasicIWP bool

	// WindowSpan is the join window for JoinQuery.
	WindowSpan tuple.Time

	// Horizon/Warmup bound the simulation; CostPerStep is the CPU model.
	Horizon     tuple.Time
	Warmup      tuple.Time
	CostPerStep tuple.Time

	// Strategy and ablation switches (exec engine).
	Strategy           exec.Strategy
	BacktrackFirstPred bool
	NoDedupPunct       bool

	// Validate inserts an arc-discipline validator (ops.Validate) between
	// the IWP operator and the sink; violations are reported in the
	// Result. The shape tests run every scenario with it enabled.
	Validate bool

	Seed int64
}

// Default returns the paper's experimental setup for the given scenario:
// Figure-4 union query, 50 / 0.05 t/s Poisson streams, 95% selectivity.
func Default(s Scenario) Config {
	return Config{
		Scenario:    s,
		Query:       UnionQuery,
		Rate1:       50,
		Rate2:       0.05,
		Selectivity: 0.95,
		WindowSpan:  2 * tuple.Second,
		Horizon:     2000 * tuple.Second,
		Warmup:      100 * tuple.Second,
		CostPerStep: sim.DefaultCostPerStep,
		Seed:        42,
	}
}

// Result aggregates the metrics of one run.
type Result struct {
	Config Config

	// Latency of data tuples at the sink.
	MeanLatency tuple.Time
	P95Latency  tuple.Time
	P99Latency  tuple.Time
	MaxLatency  tuple.Time

	// PeakQueue is the peak total buffer occupancy (Figure 8 metric).
	PeakQueue int
	// IdleFraction is the share of measured time the IWP operator spent
	// idle-waiting while holding input tuples.
	IdleFraction float64
	// Outputs counts data tuples delivered to the sink.
	Outputs int
	// ETSGenerated counts ETS punctuation injected at sources (heartbeats
	// in B, on-demand generations in C).
	ETSGenerated uint64
	// Steps counts operator executions.
	Steps uint64
	// OrderViolations counts arc-discipline violations observed by the
	// optional validator (always 0 in a correct engine).
	OrderViolations int
}

func (r Result) String() string {
	return fmt.Sprintf("%-13s lat(mean)=%11.3fms p99=%11.3fms peakQ=%6d idle=%6.2f%% out=%7d ets=%7d",
		r.Config.Scenario, r.MeanLatency.Millis(), r.P99Latency.Millis(),
		r.PeakQueue, r.IdleFraction*100, r.Outputs, r.ETSGenerated)
}

// Run executes one configured simulation and collects its metrics.
func Run(cfg Config) Result {
	tsKind := tuple.Internal
	mode := ops.TSM
	if cfg.BasicIWP {
		mode = ops.Basic
	}
	if cfg.Scenario == ScenarioD {
		tsKind = tuple.Latent
		mode = ops.LatentMode
	}
	if cfg.External {
		tsKind = tuple.External
	}

	sch1 := tuple.NewSchema("S1", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tsKind)
	sch2 := tuple.NewSchema("S2", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tsKind)
	src1 := ops.NewSource("src1", sch1, cfg.Delta)
	src2 := ops.NewSource("src2", sch2, cfg.Delta)

	g := graph.New("fig4")
	n1 := g.AddNode(src1)
	n2 := g.AddNode(src2)
	selPred := func(t *tuple.Tuple) bool {
		// Deterministic ~Selectivity filter on the payload counter.
		return float64(t.Vals[0].AsInt()%1000) < cfg.Selectivity*1000
	}
	f1 := g.AddNode(ops.NewSelect("sel1", sch1, selPred), n1)
	f2 := g.AddNode(ops.NewSelect("sel2", sch2, selPred), n2)

	var iwp graph.NodeID
	var union *ops.Union
	var join *ops.WindowJoin
	switch cfg.Query {
	case JoinQuery:
		join = ops.NewWindowJoin("join", nil, window.TimeWindow(cfg.WindowSpan), ops.CrossJoin(), mode)
		join.DedupPunct = !cfg.NoDedupPunct
		iwp = g.AddNode(join, f1, f2)
	default:
		union = ops.NewUnion("union", nil, 2, mode)
		union.DedupPunct = !cfg.NoDedupPunct
		iwp = g.AddNode(union, f1, f2)
	}

	outNode := iwp
	var validator *ops.Validate
	if cfg.Validate {
		validator = ops.NewValidate("validate", nil)
		outNode = g.AddNode(validator, iwp)
	}
	sink, lat := sim.NewLatencySink("sink")
	g.AddNode(sink, outNode)

	var policy exec.SourcePolicy
	var onDemand *ets.OnDemand
	if cfg.Scenario == ScenarioC {
		onDemand = &ets.OnDemand{}
		policy = onDemand
	}

	var s *sim.Sim
	engine := exec.MustNew(g, policy, func() tuple.Time { return s.Clock() })
	engine.Strategy = cfg.Strategy
	engine.BacktrackFirstPred = cfg.BacktrackFirstPred
	s = sim.New(engine, cfg.Horizon)
	s.Warmup = cfg.Warmup
	if cfg.CostPerStep > 0 {
		s.CostPerStep = cfg.CostPerStep
	}
	s.OnReset = append(s.OnReset, lat.Reset)

	idle := s.TrackIdle(iwp)

	var proc1 sim.Process
	if cfg.Bursty {
		// Same average rate: bursts of 1s at 10× the rate, 9s silence.
		proc1 = sim.NewBursty(cfg.Rate1*10, tuple.Second, 9*tuple.Second, cfg.Seed)
	} else {
		proc1 = sim.NewPoisson(cfg.Rate1, cfg.Seed)
	}
	extTs := func(arrival tuple.Time, _ uint64) tuple.Time {
		ts := arrival
		if cfg.Delta > 0 && cfg.CoarseTs == 0 {
			ts = arrival - cfg.Delta/2 // stable skew within the bound
		}
		if cfg.CoarseTs > 0 {
			ts = arrival - arrival%cfg.CoarseTs
		}
		return ts
	}
	st1 := &sim.Stream{Source: src1, Proc: proc1, ExtTs: extTs}
	st2 := &sim.Stream{Source: src2, Proc: sim.NewPoisson(cfg.Rate2, cfg.Seed+1), ExtTs: extTs}
	if cfg.Scenario == ScenarioB && cfg.HeartbeatRate > 0 {
		interval := tuple.Time(float64(tuple.Second) / cfg.HeartbeatRate)
		if interval < 1 {
			interval = 1
		}
		st2.Heartbeat = interval
		if cfg.HeartbeatBoth {
			st1.Heartbeat = interval
		}
	}
	s.AddStream(st1)
	s.AddStream(st2)

	if err := s.Run(); err != nil {
		panic(err)
	}

	res := Result{
		Config:       cfg,
		MeanLatency:  lat.Mean(),
		P95Latency:   lat.Percentile(95),
		P99Latency:   lat.Percentile(99),
		MaxLatency:   lat.Max(),
		PeakQueue:    engine.Queues().Peak(),
		IdleFraction: idle.Fraction(),
		Outputs:      lat.Count(),
		Steps:        engine.Steps(),
	}
	switch cfg.Scenario {
	case ScenarioB:
		res.ETSGenerated = src1.ETSEmitted() + src2.ETSEmitted()
	case ScenarioC:
		if onDemand != nil {
			res.ETSGenerated = onDemand.Generated
		}
	}
	if validator != nil {
		res.OrderViolations = len(validator.Violations())
	}
	return res
}
