package wire

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tuple"
)

// roundTrip encodes f, decodes it back, and returns the result.
func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	payload := f.encode(nil)
	got, err := DecodeFrame(f.Type(), payload, nil)
	if err != nil {
		t.Fatalf("%v round trip: %v", f.Type(), err)
	}
	return got
}

func TestRoundTripControlFrames(t *testing.T) {
	frames := []Frame{
		Hello{Version: Version, Flags: 0x10, Name: "bench-client", Clock: 123456789},
		Hello{},
		HelloAck{Version: Version, Session: 42, Credits: 65536},
		Bind{ID: 7, Stream: "sensors", TS: tuple.External, Delta: 5000,
			Fields: []tuple.Field{
				{Name: "id", Kind: tuple.IntKind},
				{Name: "temp", Kind: tuple.FloatKind},
				{Name: "lab", Kind: tuple.StringKind},
			}},
		Bind{ID: 1, Stream: "empty", TS: tuple.Latent},
		BindAck{ID: 7},
		BindAck{ID: 7, Err: "unknown stream \"sensors\""},
		Punct{ID: 3, TS: tuple.External, ETS: 987654},
		Punct{ID: 3, TS: tuple.Internal, ETS: int64max()},
		Punct{ID: 3, TS: tuple.External, ETS: 987654, Trace: 0xfeed0001, Clock: 424242},
		Heartbeat{Clock: -17},
		Demand{ID: 0, Credits: 4096},
		EOS{ID: 9},
		Error{Code: ErrCodeDraining, Msg: "server draining"},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if !reflect.DeepEqual(got, f) {
			t.Errorf("%v: got %+v, want %+v", f.Type(), got, f)
		}
	}
}

func int64max() tuple.Time { return tuple.MaxTime }

func TestRoundTripTuple(t *testing.T) {
	in := Tuple{ID: 5, T: tuple.NewData(777,
		tuple.Int(-3), tuple.Float(math.Pi), tuple.String_("héllo"),
		tuple.Bool(true), tuple.TimeVal(12345), tuple.Value{})}
	got := roundTrip(t, in).(Tuple)
	if got.ID != in.ID || got.T.Ts != in.T.Ts || len(got.T.Vals) != len(in.T.Vals) {
		t.Fatalf("got %+v", got)
	}
	for i, v := range in.T.Vals {
		if !got.T.Vals[i].Equal(v) && !(v.IsNull() && got.T.Vals[i].IsNull()) {
			t.Errorf("val %d: got %v, want %v", i, got.T.Vals[i], v)
		}
	}
}

func TestRoundTripTuples(t *testing.T) {
	in := Tuples{ID: 2}
	for i := 0; i < 100; i++ {
		in.Batch = append(in.Batch, tuple.NewData(tuple.Time(i*10), tuple.Int(int64(i)), tuple.String_("v")))
	}
	got := roundTrip(t, in).(Tuples)
	if got.ID != 2 || len(got.Batch) != 100 {
		t.Fatalf("got id=%d len=%d", got.ID, len(got.Batch))
	}
	for i, tp := range got.Batch {
		if tp.Ts != tuple.Time(i*10) || tp.Vals[0].AsInt() != int64(i) {
			t.Fatalf("tuple %d: %v", i, tp)
		}
	}
}

func TestRoundTripSpecialFloats(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64, -0.0} {
		in := Tuple{ID: 1, T: tuple.NewData(0, tuple.Float(f))}
		got := roundTrip(t, in).(Tuple)
		if math.Float64bits(got.T.Vals[0].AsFloat()) != math.Float64bits(f) {
			t.Errorf("float %v: got %v", f, got.T.Vals[0].AsFloat())
		}
	}
	// NaN round-trips bit-exact but never compares equal.
	in := Tuple{ID: 1, T: tuple.NewData(0, tuple.Float(math.NaN()))}
	got := roundTrip(t, in).(Tuple)
	if !math.IsNaN(got.T.Vals[0].AsFloat()) {
		t.Errorf("NaN decoded as %v", got.T.Vals[0].AsFloat())
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	frames := []Frame{
		Hello{Version: 1, Name: "x", Clock: 5},
		Bind{ID: 1, Stream: "s", Fields: []tuple.Field{{Name: "a", Kind: tuple.IntKind}}},
		Tuple{ID: 1, T: tuple.NewData(9, tuple.Int(4), tuple.String_("abc"))},
		Tuples{ID: 1, Batch: []*tuple.Tuple{tuple.NewData(1, tuple.Int(1))}},
		Punct{ID: 1, TS: tuple.External, ETS: 100},
		Error{Code: 1, Msg: "boom"},
	}
	for _, f := range frames {
		payload := f.encode(nil)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeFrame(f.Type(), payload[:cut], nil); err == nil {
				t.Errorf("%v truncated at %d/%d decoded without error", f.Type(), cut, len(payload))
			}
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload := append(EOS{ID: 1}.encode(nil), 0xAA)
	if _, err := DecodeFrame(TypeEOS, payload, nil); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	if _, err := DecodeFrame(FrameType(200), nil, nil); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	// A corrupted arity/count must not allocate unboundedly.
	var b []byte
	b = putU32(b, 1)         // stream id
	b = putI64(b, 0)         // ts
	b = putUvarint(b, 1<<40) // absurd arity
	if _, err := DecodeFrame(TypeTuple, b, nil); err == nil {
		t.Error("absurd arity accepted")
	}
	var c []byte
	c = putU32(c, 1)
	c = putUvarint(c, 1<<40) // absurd batch count
	if _, err := DecodeFrame(TypeTuples, c, nil); err == nil {
		t.Error("absurd batch count accepted")
	}
}

func TestReaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteMagic(); err != nil {
		t.Fatal(err)
	}
	sent := []Frame{
		Hello{Version: Version, Name: "c", Clock: 1},
		Bind{ID: 1, Stream: "s", TS: tuple.External, Delta: 10,
			Fields: []tuple.Field{{Name: "v", Kind: tuple.IntKind}}},
		Tuple{ID: 1, T: tuple.NewData(100, tuple.Int(7))},
		Tuples{ID: 1, Batch: []*tuple.Tuple{
			tuple.NewData(200, tuple.Int(8)),
			tuple.NewData(300, tuple.Int(9)),
		}},
		Punct{ID: 1, TS: tuple.External, ETS: 300},
		Heartbeat{Clock: 12345},
		EOS{ID: 1},
	}
	for _, f := range sent {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != uint64(len(sent)) {
		t.Errorf("writer frames = %d, want %d", w.Frames(), len(sent))
	}

	r := NewReader(&buf)
	if err := r.ReadMagic(); err != nil {
		t.Fatal(err)
	}
	for i, want := range sent {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("frame %d: type %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	if r.Frames() != uint64(len(sent)) {
		t.Errorf("reader frames = %d, want %d", r.Frames(), len(sent))
	}
	if r.Bytes() != w.Bytes() {
		t.Errorf("reader bytes %d != writer bytes %d", r.Bytes(), w.Bytes())
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("ts_us,v\n100,1\n"))
	if err := r.ReadMagic(); err == nil {
		t.Error("CSV text accepted as magic")
	}
}

func TestReaderMidFrameCut(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(Tuple{ID: 1, T: tuple.NewData(1, tuple.Int(1))}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(cut))
	if _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-frame cut: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	var hdr [5]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0x7F // ~2 GiB length
	hdr[4] = byte(TypeTuple)
	r := NewReader(bytes.NewReader(hdr[:]))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("oversized frame: %v, want length error", err)
	}
}

// BenchmarkTupleRoundTrip measures the per-tuple encode+decode cost — the
// hot path of the netbench loopback workload.
func BenchmarkTupleRoundTrip(b *testing.B) {
	var buf []byte
	var mag tuple.Magazine
	in := Tuple{ID: 1, T: tuple.NewData(100, tuple.Int(7), tuple.Float(1.5))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = in.encode(buf[:0])
		f, err := DecodeFrame(TypeTuple, buf, &mag)
		if err != nil {
			b.Fatal(err)
		}
		mag.Put(f.(Tuple).T)
	}
}

// TestPunctTraceCompat pins the optional-trailing-field contract: an
// untraced Punct encodes exactly as the legacy frame (legacy servers keep
// decoding it), and a legacy payload decodes with Trace==0 on a new server.
func TestPunctTraceCompat(t *testing.T) {
	legacy := Punct{ID: 9, TS: tuple.External, ETS: 1000}
	traced := Punct{ID: 9, TS: tuple.External, ETS: 1000, Trace: 77, Clock: 5}
	lp := legacy.encode(nil)
	tp := traced.encode(nil)
	if len(lp) != 4+1+8 {
		t.Fatalf("legacy punct payload = %d bytes, want 13", len(lp))
	}
	if len(tp) != len(lp)+16 {
		t.Fatalf("traced punct payload = %d bytes, want %d", len(tp), len(lp)+16)
	}
	got, err := DecodeFrame(TypePunct, lp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.(Punct); p.Trace != 0 || p.Clock != 0 || p.ETS != 1000 {
		t.Fatalf("legacy payload decoded to %+v", p)
	}
	// A truncated trailing section (trace without clock) must error, not
	// silently misparse.
	if _, err := DecodeFrame(TypePunct, tp[:len(lp)+8], nil); err == nil {
		t.Fatal("truncated trace context decoded without error")
	}
}

// TestSeqCompat pins the sequencing trailing-field contract on all three
// frames that carry it: an unsequenced frame encodes exactly as the legacy
// payload, a sequenced one appends exactly 8 bytes, and each decodes back.
func TestSeqCompat(t *testing.T) {
	mk := func() *tuple.Tuple { return tuple.NewData(7, tuple.Int(1)) }

	lt := Tuple{ID: 3, T: mk()}.encode(nil)
	st := Tuple{ID: 3, T: mk(), Seq: 41}.encode(nil)
	if len(st) != len(lt)+8 {
		t.Fatalf("sequenced TUPLE payload = %d bytes, want %d", len(st), len(lt)+8)
	}
	if f := mustDecode(t, TypeTuple, lt).(Tuple); f.Seq != 0 {
		t.Fatalf("legacy TUPLE decoded with Seq=%d", f.Seq)
	}
	if f := mustDecode(t, TypeTuple, st).(Tuple); f.Seq != 41 || f.T.Ts != 7 {
		t.Fatalf("sequenced TUPLE decoded to %+v", f)
	}

	lb := Tuples{ID: 3, Batch: []*tuple.Tuple{mk(), mk()}}.encode(nil)
	sb := Tuples{ID: 3, Batch: []*tuple.Tuple{mk(), mk()}, Seq: 90}.encode(nil)
	if len(sb) != len(lb)+8 {
		t.Fatalf("sequenced TUPLES payload = %d bytes, want %d", len(sb), len(lb)+8)
	}
	if f := mustDecode(t, TypeTuples, sb).(Tuples); f.Seq != 90 || len(f.Batch) != 2 {
		t.Fatalf("sequenced TUPLES decoded to %+v", f)
	}

	la := BindAck{ID: 3}.encode(nil)
	sa := BindAck{ID: 3, Seq: 12}.encode(nil)
	if len(sa) != len(la)+8 {
		t.Fatalf("sequenced BIND_ACK payload = %d bytes, want %d", len(sa), len(la)+8)
	}
	if f := mustDecode(t, TypeBindAck, la).(BindAck); f.Seq != 0 {
		t.Fatalf("legacy BIND_ACK decoded with Seq=%d", f.Seq)
	}
	if f := mustDecode(t, TypeBindAck, sa).(BindAck); f.Seq != 12 || f.Err != "" {
		t.Fatalf("sequenced BIND_ACK decoded to %+v", f)
	}
	// A truncated trailing Seq must error, not silently misparse.
	if _, err := DecodeFrame(TypeBindAck, sa[:len(la)+4], nil); err == nil {
		t.Fatal("truncated trailing Seq decoded without error")
	}
}

func mustDecode(t *testing.T, typ FrameType, payload []byte) Frame {
	t.Helper()
	f, err := DecodeFrame(typ, payload, nil)
	if err != nil {
		t.Fatalf("%v decode: %v", typ, err)
	}
	return f
}
