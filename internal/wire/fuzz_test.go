package wire

import (
	"bytes"
	"testing"

	"repro/internal/tuple"
)

// FuzzDecodeFrame throws arbitrary bytes at every frame decoder. The
// properties checked:
//
//   - no panic, no unbounded allocation (the corpus runs under the fuzzer's
//     memory limit; maxArity/maxFields/MaxFrame are the guards);
//   - a payload that decodes must re-encode and decode to the same frame
//     (decode ∘ encode ∘ decode = decode — canonical form is a fixpoint).
func colSeedFrame() Frame {
	b := tuple.NewColBatch(0)
	b.AppendPunct(3)
	b.AppendTuple(tuple.NewData(7, tuple.Int(1), tuple.String_("c"), tuple.Value{}))
	b.AppendTuple(tuple.NewData(8, tuple.Float(0.5), tuple.String_(""), tuple.Bool(true)))
	b.AppendPunct(9)
	return TuplesCol{ID: 2, B: b}
}

func FuzzDecodeFrame(f *testing.F) {
	seedFrames := []Frame{
		Hello{Version: Version, Name: "fuzz", Clock: 99},
		HelloAck{Version: Version, Session: 7, Credits: 1024},
		Bind{ID: 1, Stream: "s", TS: tuple.External, Delta: 500,
			Fields: []tuple.Field{{Name: "v", Kind: tuple.IntKind}}},
		BindAck{ID: 1, Err: "no"},
		Tuple{ID: 1, T: tuple.NewData(10, tuple.Int(1), tuple.String_("x"))},
		Tuples{ID: 1, Batch: []*tuple.Tuple{tuple.NewData(1, tuple.Float(2.5))}},
		Punct{ID: 1, TS: tuple.Internal, ETS: 123},
		Heartbeat{Clock: -5},
		Demand{ID: 0, Credits: 10},
		EOS{ID: 3},
		Error{Code: ErrCodeProtocol, Msg: "bad"},
		colSeedFrame(),
		PlanDeploy{Plan: 11, Spec: []byte{0x01, 0x02, 0x03}},
		PlanDeploy{Plan: 12},
		PlanAck{Plan: 11, Err: "no such stream"},
		PlanAck{Plan: 11},
		PlanStart{Plan: 11},
		PlanStop{Plan: 11},
	}
	for _, fr := range seedFrames {
		f.Add(byte(fr.Type()), fr.encode(nil))
	}
	f.Add(byte(TypeTuple), []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(byte(250), []byte{})

	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		fr, err := DecodeFrame(FrameType(typ), payload, nil)
		if err != nil {
			return
		}
		re := fr.encode(nil)
		fr2, err := DecodeFrame(FrameType(typ), re, nil)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v (payload %x)", err, re)
		}
		re2 := fr2.encode(nil)
		if !bytes.Equal(re, re2) {
			t.Fatalf("re-encode not a fixpoint:\n first %x\nsecond %x", re, re2)
		}
	})
}
