package wire

// Control-plane frame extension: plan shipping. A coordinator deploys a
// serialized query-plan fragment to a worker streamd over the same binary
// session that later carries the cut arcs' data. The payload bytes are
// opaque to this package — they are produced and consumed by the plan codec
// in internal/dist — so the wire layer stays independent of plan schema
// evolution (the codec versions itself, exactly like the checkpoint codec).
//
// Deployment is a two-phase handshake per worker:
//
//	PLAN_DEPLOY  coordinator → worker: plan id + codec bytes; the worker
//	             decodes, recompiles its fragment, binds ingress streams,
//	             and answers …
//	PLAN_ACK     worker → coordinator: plan id + empty Err on success, else
//	             the rejection reason (the coordinator aborts the deploy
//	             everywhere on any rejection)
//	PLAN_START   coordinator → worker: begin execution — only sent after
//	             every worker acked, so no fragment emits into a link whose
//	             receiver is not yet listening
//	PLAN_STOP    coordinator → worker: tear the fragment down (drain links,
//	             EOS egress, release streams); also acked with PLAN_ACK
const (
	// TypePlanDeploy ships a serialized plan fragment (coordinator → worker).
	TypePlanDeploy FrameType = 13
	// TypePlanAck accepts or rejects a deploy/start/stop (worker → coordinator).
	TypePlanAck FrameType = 14
	// TypePlanStart begins execution of a deployed fragment.
	TypePlanStart FrameType = 15
	// TypePlanStop tears a deployed fragment down.
	TypePlanStop FrameType = 16
)

// PlanDeploy ships one serialized plan fragment to a worker.
type PlanDeploy struct {
	// Plan is the coordinator-assigned plan id; it scopes the later
	// PLAN_START/PLAN_STOP and names the link streams of the cut arcs.
	Plan uint64
	// Spec is the plan-codec payload (versioned by internal/dist, opaque
	// here). Bounded by MaxFrame like any payload.
	Spec []byte
}

// PlanAck accepts (Err == "") or rejects one plan operation.
type PlanAck struct {
	// Plan echoes the operation's plan id.
	Plan uint64
	// Err is empty on success, else the rejection reason.
	Err string
}

// PlanStart begins execution of a deployed plan fragment.
type PlanStart struct {
	// Plan is the deployed plan's id.
	Plan uint64
}

// PlanStop tears a deployed plan fragment down.
type PlanStop struct {
	// Plan is the deployed plan's id.
	Plan uint64
}

// Type reports TypePlanDeploy.
func (PlanDeploy) Type() FrameType { return TypePlanDeploy }

// Type reports TypePlanAck.
func (PlanAck) Type() FrameType { return TypePlanAck }

// Type reports TypePlanStart.
func (PlanStart) Type() FrameType { return TypePlanStart }

// Type reports TypePlanStop.
func (PlanStop) Type() FrameType { return TypePlanStop }

func (f PlanDeploy) encode(b []byte) []byte {
	b = putU64(b, f.Plan)
	b = putUvarint(b, uint64(len(f.Spec)))
	return append(b, f.Spec...)
}

func (f PlanAck) encode(b []byte) []byte {
	b = putU64(b, f.Plan)
	return putString(b, f.Err)
}

func (f PlanStart) encode(b []byte) []byte { return putU64(b, f.Plan) }

func (f PlanStop) encode(b []byte) []byte { return putU64(b, f.Plan) }

// specBytes decodes a length-prefixed byte blob, copied out of the payload
// (the reader's buffer is reused across frames). The length is validated
// against the bytes actually on the wire before allocating, same as str().
func (d *decoder) specBytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	s := make([]byte, n)
	copy(s, d.b[d.off:d.off+int(n)])
	d.off += int(n)
	return s
}
