// Package wire defines the binary framing protocol of the networked
// ingestion subsystem: the on-the-wire form of tuples and — crucially — of
// the timestamp-management metadata the paper's external-timestamp rule
// needs (§5: ETS = t + τ − δ under a bounded skew δ). A transport that
// ships only data tuples silently degrades every remote stream to the
// no-ETS worst case, because punctuation, heartbeats, and skew samples
// never cross the socket; here they are first-class frame types, following
// the progress-as-transport-element argument of timestamp tokens (Lattuada
// & McSherry) and punctuation feedback (Fernández-Moctezuma et al.).
//
// # Framing
//
// A binary connection opens with the 4-byte magic "\xF5SM1" (the first byte
// is outside ASCII so a legacy CSV line can never alias it), followed by a
// stream of length-prefixed frames:
//
//	uint32  payload length N (little endian, ≤ MaxFrame)
//	uint8   frame type
//	N bytes payload
//
// Payload scalars are little-endian fixed width; strings and counts use
// uvarints. Encoding appends to a caller-supplied buffer and decoding
// slices the frame payload in place (strings are copied out, since the
// reader reuses its buffer), so the steady state allocates nothing beyond
// the tuples themselves — and those come from the tuple pool.
//
// # Frame inventory
//
//	HELLO / HELLO_ACK  version + capability negotiation; HELLO carries the
//	                   sender's clock (first skew sample), HELLO_ACK the
//	                   session id and the initial tuple credit window
//	BIND / BIND_ACK    per-stream registration: name, schema, timestamp
//	                   kind, and skew bound δ, checked against the server's
//	                   catalog
//	TUPLE / TUPLES     one data tuple / a batch of data tuples
//	PUNCT              punctuation (ETS) carrying its timestamp kind — the
//	                   wire form of the paper's enabling timestamps
//	HEARTBEAT          sender clock sample for the per-connection skew
//	                   estimator (τ and δ measurement), sent on a timer
//	DEMAND             back-channel credit grant: the transport form of the
//	                   runtime's upstream demand/backpressure signal
//	EOS                end-of-stream for one bound stream
//	ERROR              terminal diagnostic (protocol violation, drain)
//	PLAN_DEPLOY / PLAN_ACK / PLAN_START / PLAN_STOP
//	                   control plane for distributed execution: a coordinator
//	                   ships serialized plan fragments to worker streamd
//	                   instances and sequences their start/stop (see
//	                   planframe.go and internal/dist)
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Version is the protocol version this package speaks. HELLO carries the
// sender's highest supported version; the receiver answers with min(its own,
// offered) and both sides speak that.
const Version = 1

// Magic is the 4-byte connection preamble of a binary session. Its first
// byte is deliberately non-ASCII: a server peeking at the first bytes of a
// connection can tell a binary session from a legacy CSV text feed.
var Magic = [4]byte{0xF5, 'S', 'M', '1'}

// MaxFrame bounds a frame's payload length; longer frames are a protocol
// error (a corrupted or hostile length prefix must not make the reader
// allocate gigabytes).
const MaxFrame = 1 << 24

// FrameType identifies a frame's payload shape.
type FrameType uint8

const (
	// TypeHello opens a session (client → server).
	TypeHello FrameType = 1
	// TypeHelloAck accepts a session (server → client).
	TypeHelloAck FrameType = 2
	// TypeBind registers a stream on the session (client → server).
	TypeBind FrameType = 3
	// TypeBindAck accepts or rejects a registration (server → client).
	TypeBindAck FrameType = 4
	// TypeTuple carries one data tuple.
	TypeTuple FrameType = 5
	// TypeTuples carries a batch of data tuples for one stream.
	TypeTuples FrameType = 6
	// TypePunct carries an enabling timestamp (punctuation).
	TypePunct FrameType = 7
	// TypeHeartbeat carries a sender clock sample for skew estimation.
	TypeHeartbeat FrameType = 8
	// TypeDemand is the back-channel credit grant (server → client).
	TypeDemand FrameType = 9
	// TypeEOS closes one bound stream.
	TypeEOS FrameType = 10
	// TypeError reports a terminal condition and closes the session.
	TypeError FrameType = 11
)

func (t FrameType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeHelloAck:
		return "HELLO_ACK"
	case TypeBind:
		return "BIND"
	case TypeBindAck:
		return "BIND_ACK"
	case TypeTuple:
		return "TUPLE"
	case TypeTuples:
		return "TUPLES"
	case TypePunct:
		return "PUNCT"
	case TypeHeartbeat:
		return "HEARTBEAT"
	case TypeDemand:
		return "DEMAND"
	case TypeEOS:
		return "EOS"
	case TypeError:
		return "ERROR"
	case TypeTuplesCol:
		return "TUPLES_COL"
	case TypePlanDeploy:
		return "PLAN_DEPLOY"
	case TypePlanAck:
		return "PLAN_ACK"
	case TypePlanStart:
		return "PLAN_START"
	case TypePlanStop:
		return "PLAN_STOP"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Error codes carried by ERROR frames.
const (
	// ErrCodeProtocol: the peer violated the protocol (bad frame, bad
	// state); the session is closed.
	ErrCodeProtocol uint16 = 1
	// ErrCodeDraining: the server is shutting down gracefully; clients
	// should stop sending and reconnect elsewhere (or later).
	ErrCodeDraining uint16 = 2
	// ErrCodeBind: a BIND failed (unknown stream, schema mismatch).
	ErrCodeBind uint16 = 3
)

// Frame is the decoded form of one wire frame.
type Frame interface {
	// Type reports the frame's wire type tag.
	Type() FrameType
	// encode appends the frame's payload (without length prefix or type
	// byte) to b.
	encode(b []byte) []byte
}

// Hello opens a session.
type Hello struct {
	// Version is the highest protocol version the client speaks.
	Version uint16
	// Flags is reserved capability bits (0 for now).
	Flags uint16
	// Name identifies the client (diagnostics, metrics labels).
	Name string
	// Clock is the client's clock in µs at send time — the session's first
	// skew sample.
	Clock int64
}

// HelloAck accepts a session.
type HelloAck struct {
	// Version is the negotiated protocol version.
	Version uint16
	// Session is the server-assigned session id.
	Session uint64
	// Credits is the initial tuple credit window: the client may send this
	// many data tuples before it must wait for a DEMAND grant.
	Credits uint32
	// Flags echoes the subset of the client's HELLO capability bits the
	// server granted (CapColumnar, …). Encoded as an optional trailing
	// field only when non-zero, so version-1 decoders that reject trailing
	// bytes still accept acks from capability-free negotiations — and a
	// capability-bearing ack only ever goes to a client that asked for the
	// capability, hence understands the field.
	Flags uint16
}

// Bind registers a stream on the session. The ID is chosen by the client
// and scopes every later TUPLE/TUPLES/PUNCT/EOS frame.
type Bind struct {
	// ID is the client-chosen stream id (unique per session).
	ID uint32
	// Stream is the server-side stream name to bind to.
	Stream string
	// TS is the stream's timestamp kind as the client understands it.
	TS tuple.TSKind
	// Delta is the client's declared skew bound δ (µs, external streams).
	Delta tuple.Time
	// Fields is the schema the client will send, checked against the
	// server's catalog entry for Stream.
	Fields []tuple.Field
}

// BindAck accepts (Err == "") or rejects one Bind.
type BindAck struct {
	// ID echoes the Bind's stream id.
	ID uint32
	// Err is empty on success, else the rejection reason.
	Err string
	// Seq is the server's last-applied ingest sequence number for the
	// stream (0 = none, or sequencing not in use): the dedupe watermark a
	// reconnecting client trims its retained resend batch against, so a
	// crash-restored server tells each producer exactly where to resume.
	// Optional trailing field, encoded only when non-zero under CapSeq
	// (same scheme as HelloAck.Flags).
	Seq uint64
}

// Tuple carries one data tuple for a bound stream.
type Tuple struct {
	// ID is the bound stream id.
	ID uint32
	// T is the tuple; Ts is its external timestamp (ignored by the server
	// for internal/latent streams, which stamp on arrival).
	T *tuple.Tuple
	// Seq is the client-assigned per-stream sequence number (1-based,
	// contiguous; 0 = unsequenced). The server applies the tuple only when
	// Seq exceeds its last-applied watermark, making retained-batch resend
	// after reconnect or crash recovery idempotent. Optional trailing
	// field, encoded only when non-zero under CapSeq.
	Seq uint64
}

// Tuples carries a batch of data tuples for one bound stream.
type Tuples struct {
	// ID is the bound stream id.
	ID uint32
	// Batch holds the tuples, in send order.
	Batch []*tuple.Tuple
	// Seq is the sequence number of the first tuple in Batch; the batch
	// occupies Seq..Seq+len(Batch)-1 (client-assigned, contiguous; 0 =
	// unsequenced). Optional trailing field, encoded only when non-zero
	// under CapSeq.
	Seq uint64
}

// Punct carries an enabling timestamp: a promise that no future tuple on
// this stream will carry a timestamp below ETS.
type Punct struct {
	// ID is the bound stream id.
	ID uint32
	// TS is the timestamp kind the promise is expressed in; the server
	// applies external punctuation directly and ignores the value for
	// internal/latent streams (their bounds live on the server clock).
	TS tuple.TSKind
	// ETS is the promised lower bound (µs).
	ETS tuple.Time
	// Trace is the punctuation-propagation trace ID (0 = untraced) and
	// Clock the sender's clock at the moment of sending (µs); together
	// they let the server splice the network hop into the punctuation's
	// span timeline. Both ride as optional trailing bytes — encoded only
	// when Trace is non-zero and the session negotiated CapTrace — so
	// legacy decoders never see them (the same scheme as HelloAck.Flags).
	Trace uint64
	Clock int64
}

// CapTrace is the HELLO/HELLO_ACK capability bit for punctuation trace
// context on PUNCT frames. A client that sets it offers trace IDs; the
// server echoes it when span collection is enabled, and only then may
// either side append the trailing Trace/Clock fields.
const CapTrace uint16 = 1 << 1

// CapSeq is the HELLO/HELLO_ACK capability bit for per-stream tuple
// sequencing: TUPLE/TUPLES frames carry a trailing client-assigned sequence
// number, BIND_ACK carries the server's last-applied watermark, and the
// server suppresses duplicates below it. Together with the client's
// retained-batch resend this upgrades reconnect and crash-restore replay
// from at-least-once to effectively exactly-once.
const CapSeq uint16 = 1 << 2

// Heartbeat carries a sender clock sample. The receiver records
// (senderClock, receiveClock) pairs; the spread of their differences bounds
// the connection's skew δ and the elapsed time since the last sample is the
// τ of the paper's ETS rule.
type Heartbeat struct {
	// Clock is the sender's clock in µs at send time.
	Clock int64
}

// Demand is the back-channel credit grant: the wire form of the runtime's
// upstream demand signal, doubling as flow control. Credits are additive.
type Demand struct {
	// ID is the bound stream id the demand concerns (0 = whole session).
	ID uint32
	// Credits is the number of additional data tuples the client may send.
	Credits uint32
}

// EOS closes one bound stream: no further frames for this id will follow.
type EOS struct {
	// ID is the bound stream id.
	ID uint32
}

// Error reports a terminal condition.
type Error struct {
	// Code classifies the error (ErrCode*).
	Code uint16
	// Msg is a human-readable diagnostic.
	Msg string
}

// Type implementations.

// Type reports TypeHello.
func (Hello) Type() FrameType { return TypeHello }

// Type reports TypeHelloAck.
func (HelloAck) Type() FrameType { return TypeHelloAck }

// Type reports TypeBind.
func (Bind) Type() FrameType { return TypeBind }

// Type reports TypeBindAck.
func (BindAck) Type() FrameType { return TypeBindAck }

// Type reports TypeTuple.
func (Tuple) Type() FrameType { return TypeTuple }

// Type reports TypeTuples.
func (Tuples) Type() FrameType { return TypeTuples }

// Type reports TypePunct.
func (Punct) Type() FrameType { return TypePunct }

// Type reports TypeHeartbeat.
func (Heartbeat) Type() FrameType { return TypeHeartbeat }

// Type reports TypeDemand.
func (Demand) Type() FrameType { return TypeDemand }

// Type reports TypeEOS.
func (EOS) Type() FrameType { return TypeEOS }

// Type reports TypeError.
func (Error) Type() FrameType { return TypeError }

// --- encoding primitives ---

func putU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func putI64(b []byte, v int64) []byte { return putU64(b, uint64(v)) }

func putUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder walks one frame payload. Scalar reads fail by setting err once;
// callers check it after the last read (the payload is bounded, so a
// truncated frame cannot over-read — every get* checks remaining length).
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated frame payload at offset %d", d.off)
	}
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// str copies the string out of the payload: the reader's buffer is reused
// across frames, so decoded frames must not alias it.
func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// done verifies the whole payload was consumed; trailing bytes are a
// protocol error (they would mask version-skew bugs silently otherwise).
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes in frame payload", len(d.b)-d.off)
	}
	return nil
}

// --- value codec ---

// appendValue encodes one attribute value: a kind tag then the payload.
func appendValue(b []byte, v tuple.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case tuple.Null:
	case tuple.IntKind:
		b = putI64(b, v.AsInt())
	case tuple.FloatKind:
		b = putU64(b, math.Float64bits(v.AsFloat()))
	case tuple.StringKind:
		b = putString(b, v.AsString())
	case tuple.BoolKind:
		if v.AsBool() {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case tuple.TimeKind:
		b = putI64(b, int64(v.AsTime()))
	}
	return b
}

func (d *decoder) value() tuple.Value {
	switch tuple.ValueKind(d.byte()) {
	case tuple.Null:
		return tuple.Value{}
	case tuple.IntKind:
		return tuple.Int(d.i64())
	case tuple.FloatKind:
		return tuple.Float(math.Float64frombits(d.u64()))
	case tuple.StringKind:
		return tuple.String_(d.str())
	case tuple.BoolKind:
		return tuple.Bool(d.byte() != 0)
	case tuple.TimeKind:
		return tuple.TimeVal(tuple.Time(d.i64()))
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wire: unknown value kind at offset %d", d.off-1)
		}
		return tuple.Value{}
	}
}

// appendTuple encodes a data tuple body: timestamp then values.
func appendTuple(b []byte, t *tuple.Tuple) []byte {
	b = putI64(b, int64(t.Ts))
	b = putUvarint(b, uint64(len(t.Vals)))
	for _, v := range t.Vals {
		b = appendValue(b, v)
	}
	return b
}

// maxArity bounds the per-tuple value count a decoder accepts; a corrupted
// count must not turn into an enormous allocation.
const maxArity = 1 << 12

func (d *decoder) tuple(mag *tuple.Magazine) *tuple.Tuple {
	ts := tuple.Time(d.i64())
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxArity || n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	var t *tuple.Tuple
	if mag != nil {
		t = mag.Get()
	} else {
		t = tuple.Get()
	}
	t.Ts = ts
	for i := uint64(0); i < n; i++ {
		t.Vals = append(t.Vals, d.value())
	}
	if d.err != nil {
		if mag != nil {
			mag.Put(t)
		} else {
			tuple.Put(t)
		}
		return nil
	}
	return t
}

// --- per-frame payload codecs ---

func (f Hello) encode(b []byte) []byte {
	b = putU16(b, f.Version)
	b = putU16(b, f.Flags)
	b = putString(b, f.Name)
	return putI64(b, f.Clock)
}

func (f HelloAck) encode(b []byte) []byte {
	b = putU16(b, f.Version)
	b = putU64(b, f.Session)
	b = putU32(b, f.Credits)
	if f.Flags != 0 {
		b = putU16(b, f.Flags)
	}
	return b
}

func (f Bind) encode(b []byte) []byte {
	b = putU32(b, f.ID)
	b = putString(b, f.Stream)
	b = append(b, byte(f.TS))
	b = putI64(b, int64(f.Delta))
	b = putUvarint(b, uint64(len(f.Fields)))
	for _, fd := range f.Fields {
		b = putString(b, fd.Name)
		b = append(b, byte(fd.Kind))
	}
	return b
}

func (f BindAck) encode(b []byte) []byte {
	b = putU32(b, f.ID)
	b = putString(b, f.Err)
	if f.Seq != 0 {
		b = putU64(b, f.Seq)
	}
	return b
}

func (f Tuple) encode(b []byte) []byte {
	b = putU32(b, f.ID)
	b = appendTuple(b, f.T)
	if f.Seq != 0 {
		b = putU64(b, f.Seq)
	}
	return b
}

func (f Tuples) encode(b []byte) []byte {
	b = putU32(b, f.ID)
	b = putUvarint(b, uint64(len(f.Batch)))
	for _, t := range f.Batch {
		b = appendTuple(b, t)
	}
	if f.Seq != 0 {
		b = putU64(b, f.Seq)
	}
	return b
}

func (f Punct) encode(b []byte) []byte {
	b = putU32(b, f.ID)
	b = append(b, byte(f.TS))
	b = putI64(b, int64(f.ETS))
	if f.Trace != 0 {
		b = putU64(b, f.Trace)
		b = putI64(b, f.Clock)
	}
	return b
}

func (f Heartbeat) encode(b []byte) []byte { return putI64(b, f.Clock) }

func (f Demand) encode(b []byte) []byte {
	b = putU32(b, f.ID)
	return putU32(b, f.Credits)
}

func (f EOS) encode(b []byte) []byte { return putU32(b, f.ID) }

func (f Error) encode(b []byte) []byte {
	b = putU16(b, f.Code)
	return putString(b, f.Msg)
}

// maxFields bounds the schema arity a BIND may declare.
const maxFields = 1 << 10

// DecodeFrame decodes one frame payload. Tuple-carrying frames draw their
// tuples from mag when non-nil (the reader's magazine), else from the shared
// tuple pool. The payload may be reused by the caller after DecodeFrame
// returns — nothing in the result aliases it.
func DecodeFrame(typ FrameType, payload []byte, mag *tuple.Magazine) (Frame, error) {
	d := &decoder{b: payload}
	switch typ {
	case TypeHello:
		f := Hello{Version: d.u16(), Flags: d.u16(), Name: d.str(), Clock: d.i64()}
		return f, d.done()
	case TypeHelloAck:
		f := HelloAck{Version: d.u16(), Session: d.u64(), Credits: d.u32()}
		if d.err == nil && d.off < len(d.b) {
			f.Flags = d.u16() // optional capability echo (see HelloAck.Flags)
		}
		return f, d.done()
	case TypeBind:
		f := Bind{ID: d.u32(), Stream: d.str(), TS: tuple.TSKind(d.byte()), Delta: tuple.Time(d.i64())}
		n := d.uvarint()
		if d.err == nil && (n > maxFields || n > uint64(len(payload))) {
			d.fail()
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			f.Fields = append(f.Fields, tuple.Field{Name: d.str(), Kind: tuple.ValueKind(d.byte())})
		}
		return f, d.done()
	case TypeBindAck:
		f := BindAck{ID: d.u32(), Err: d.str()}
		if d.err == nil && d.off < len(d.b) {
			f.Seq = d.u64() // optional dedupe watermark (see BindAck.Seq)
		}
		return f, d.done()
	case TypeTuple:
		f := Tuple{ID: d.u32()}
		f.T = d.tuple(mag)
		if d.err == nil && d.off < len(d.b) {
			f.Seq = d.u64() // optional sequence number (see Tuple.Seq)
		}
		return f, d.done()
	case TypeTuples:
		f := Tuples{ID: d.u32()}
		n := d.uvarint()
		if d.err == nil && n > uint64(len(payload)) {
			d.fail()
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			if t := d.tuple(mag); t != nil {
				f.Batch = append(f.Batch, t)
			}
		}
		if d.err == nil && d.off < len(d.b) {
			f.Seq = d.u64() // optional first-tuple sequence (see Tuples.Seq)
		}
		if err := d.done(); err != nil {
			// Return already-decoded tuples to their pool: the frame is
			// rejected whole, nothing downstream will consume them.
			for _, t := range f.Batch {
				if mag != nil {
					mag.Put(t)
				} else {
					tuple.Put(t)
				}
			}
			return nil, err
		}
		return f, nil
	case TypePunct:
		f := Punct{ID: d.u32(), TS: tuple.TSKind(d.byte()), ETS: tuple.Time(d.i64())}
		if d.err == nil && d.off < len(d.b) {
			f.Trace = d.u64() // optional trace context (see Punct.Trace)
			f.Clock = d.i64()
		}
		return f, d.done()
	case TypeHeartbeat:
		f := Heartbeat{Clock: d.i64()}
		return f, d.done()
	case TypeDemand:
		f := Demand{ID: d.u32(), Credits: d.u32()}
		return f, d.done()
	case TypeEOS:
		f := EOS{ID: d.u32()}
		return f, d.done()
	case TypeError:
		f := Error{Code: d.u16(), Msg: d.str()}
		return f, d.done()
	case TypeTuplesCol:
		f := TuplesCol{ID: d.u32()}
		f.B = d.tuplesCol()
		if err := d.done(); err != nil {
			tuple.PutColBatch(f.B)
			return nil, err
		}
		return f, nil
	case TypePlanDeploy:
		f := PlanDeploy{Plan: d.u64(), Spec: d.specBytes()}
		return f, d.done()
	case TypePlanAck:
		f := PlanAck{Plan: d.u64(), Err: d.str()}
		return f, d.done()
	case TypePlanStart:
		f := PlanStart{Plan: d.u64()}
		return f, d.done()
	case TypePlanStop:
		f := PlanStop{Plan: d.u64()}
		return f, d.done()
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", typ)
	}
}
