package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRoundTripPlanFrames(t *testing.T) {
	frames := []Frame{
		PlanDeploy{Plan: 1, Spec: []byte("ddl+queries+placement")},
		PlanDeploy{Plan: 2},
		PlanAck{Plan: 1, Err: ""},
		PlanAck{Plan: 1, Err: "schema mismatch on link:1:3-5.0"},
		PlanStart{Plan: 1},
		PlanStop{Plan: 1},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if pd, ok := f.(PlanDeploy); ok {
			gd := got.(PlanDeploy)
			if gd.Plan != pd.Plan || !bytes.Equal(gd.Spec, pd.Spec) {
				t.Fatalf("%v: got %+v, want %+v", f.Type(), got, f)
			}
			continue
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("%v: got %+v, want %+v", f.Type(), got, f)
		}
	}
}

// TestPlanDeployDecodeCopies pins that the decoded Spec does not alias the
// frame payload: the reader reuses its buffer across frames, so an aliased
// spec would be silently corrupted by the next frame.
func TestPlanDeployDecodeCopies(t *testing.T) {
	payload := PlanDeploy{Plan: 3, Spec: []byte{9, 9, 9}}.encode(nil)
	got, err := DecodeFrame(TypePlanDeploy, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		payload[i] = 0
	}
	if f := got.(PlanDeploy); !bytes.Equal(f.Spec, []byte{9, 9, 9}) {
		t.Fatalf("spec aliases payload: %v", f.Spec)
	}
}

func TestPlanFramesRejectHostilePayloads(t *testing.T) {
	cases := map[string]struct {
		typ     FrameType
		payload []byte
	}{
		"deploy-truncated-id":  {TypePlanDeploy, []byte{1, 2, 3}},
		"deploy-huge-spec-len": {TypePlanDeploy, putUvarint(putU64(nil, 1), 1<<40)},
		"deploy-spec-shorter": {TypePlanDeploy, append(
			putUvarint(putU64(nil, 1), 16), 0xAA, 0xBB)},
		"deploy-trailing":  {TypePlanDeploy, append(PlanDeploy{Plan: 1}.encode(nil), 0)},
		"ack-truncated":    {TypePlanAck, putU64(nil, 1)},
		"ack-huge-err-len": {TypePlanAck, putUvarint(putU64(nil, 1), 1<<40)},
		"start-short":      {TypePlanStart, []byte{1, 2, 3, 4}},
		"start-trailing":   {TypePlanStart, append(PlanStart{Plan: 1}.encode(nil), 0)},
		"stop-short":       {TypePlanStop, nil},
		"stop-trailing":    {TypePlanStop, append(PlanStop{Plan: 1}.encode(nil), 0)},
	}
	for name, c := range cases {
		if _, err := DecodeFrame(c.typ, c.payload, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
