package wire

import (
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Columnar frame extension. A client that sets CapColumnar in HELLO.Flags
// and sees it echoed in HELLO_ACK.Flags may ship batches as TUPLES_COL
// frames: column-major payloads that decode straight into a tuple.ColBatch,
// so neither endpoint materializes per-row *Tuple structs on the hot path.
// The capability is negotiated — a server that does not understand columnar
// frames never sees one, and an old client keeps speaking row TUPLES frames
// against a columnar-capable server unchanged.
//
// TUPLES_COL payload layout (scalars little-endian, counts uvarint):
//
//	u32      bound stream id
//	uvarint  row count R
//	uvarint  punctuation count P
//	P ×      uvarint pos (non-decreasing, ≤ R), i64 ets, uvarint ckpt
//	R × i64  timestamp column
//	uvarint  column count C
//	C ×      column block:
//	  u8 tag — 0xFF boxed (mixed kinds), else the uniform ValueKind
//	  boxed:      R × value (kind byte + payload, as row frames encode)
//	  tag Null:   nothing (all-null column)
//	  otherwise:  u8 allValid; if 0, ceil(R/64) × u64 validity words
//	              then R payload entries:
//	                int/time  i64
//	                float     u64 (IEEE bits)
//	                bool      u8
//	                string    uvarint length + bytes
//
// Arrival times and sequence numbers are deliberately absent, exactly as in
// row TUPLES frames: the receiving source stamps both at ingest.

// CapColumnar is the HELLO/HELLO_ACK capability bit for TUPLES_COL frames.
const CapColumnar uint16 = 1 << 0

// TypeTuplesCol carries a columnar batch of data tuples for one stream.
// Only valid after both sides negotiated CapColumnar.
const TypeTuplesCol FrameType = 12

// colAny tags a boxed (mixed-kind) column block.
const colAny byte = 0xFF

// TuplesCol carries a columnar batch of data tuples for one bound stream.
// B must hold data rows only — punctuation marks round-trip, but servers
// route stream bounds through PUNCT frames (see Engine.IngestColBatch).
type TuplesCol struct {
	// ID is the bound stream id.
	ID uint32
	// B is the batch; ownership stays with the sender on encode and passes
	// to the caller on decode (the batch comes from the shared pool).
	B *tuple.ColBatch
}

// Type reports TypeTuplesCol.
func (TuplesCol) Type() FrameType { return TypeTuplesCol }

func (f TuplesCol) encode(b []byte) []byte {
	b = putU32(b, f.ID)
	batch := f.B
	n := batch.Len()
	b = putUvarint(b, uint64(n))
	b = putUvarint(b, uint64(len(batch.Puncts)))
	for _, p := range batch.Puncts {
		b = putUvarint(b, uint64(p.Pos))
		b = putI64(b, int64(p.Ts))
		b = putUvarint(b, p.Ckpt)
	}
	for _, ts := range batch.Ts[:n] {
		b = putI64(b, int64(ts))
	}
	b = putUvarint(b, uint64(batch.NumCols()))
	for i := range batch.Cols {
		b = appendCol(b, &batch.Cols[i], n)
	}
	return b
}

func appendCol(b []byte, c *tuple.Col, n int) []byte {
	if c.Any != nil {
		b = append(b, colAny)
		for _, v := range c.Any[:n] {
			b = appendValue(b, v)
		}
		return b
	}
	b = append(b, byte(c.Kind))
	if c.Kind == tuple.Null {
		return b // all-null column, no payload
	}
	if c.Valid.AllSet(n) {
		b = append(b, 1)
	} else {
		b = append(b, 0)
		for _, w := range c.Valid.Words(n) {
			b = putU64(b, w)
		}
	}
	switch c.Kind {
	case tuple.IntKind, tuple.TimeKind:
		for _, v := range c.I64[:n] {
			b = putI64(b, v)
		}
	case tuple.BoolKind:
		for _, v := range c.I64[:n] {
			b = append(b, byte(v&1))
		}
	case tuple.FloatKind:
		for _, v := range c.F64[:n] {
			b = putU64(b, math.Float64bits(v))
		}
	case tuple.StringKind:
		for _, s := range c.Str[:n] {
			b = putString(b, s)
		}
	}
	return b
}

// remaining reports the unconsumed payload length — the allocation bound
// for count-prefixed sections (a hostile count must not out-allocate the
// bytes actually on the wire).
func (d *decoder) remaining() int { return len(d.b) - d.off }

// tuplesCol decodes a TUPLES_COL payload after its stream id. On error the
// partially built batch is recycled and nil is returned.
func (d *decoder) tuplesCol() *tuple.ColBatch {
	rows := d.uvarint()
	npunct := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Every row costs ≥8 payload bytes (its timestamp), every punctuation
	// ≥10 (pos + ets + ckpt tag); reject counts the frame cannot actually
	// carry before allocating.
	if rows > uint64(d.remaining())/8 || npunct > uint64(d.remaining())/10 {
		d.fail()
		return nil
	}
	b := tuple.GetColBatch(0)
	prev := -1
	for i := uint64(0); i < npunct && d.err == nil; i++ {
		pos := d.uvarint()
		ts := tuple.Time(d.i64())
		ckpt := d.uvarint()
		if pos > rows || int(pos) < prev {
			d.fail()
			break
		}
		prev = int(pos)
		b.Puncts = append(b.Puncts, tuple.PunctMark{Pos: int(pos), Ts: ts, Ckpt: ckpt})
	}
	for i := uint64(0); i < rows && d.err == nil; i++ {
		b.Ts = append(b.Ts, tuple.Time(d.i64()))
	}
	ncols := d.uvarint()
	if d.err == nil && ncols > maxArity {
		d.fail()
	}
	if d.err != nil {
		tuple.PutColBatch(b)
		return nil
	}
	if cap(b.Cols) < int(ncols) {
		b.Cols = make([]tuple.Col, ncols)
	} else {
		b.Cols = b.Cols[:ncols]
	}
	for i := range b.Cols {
		d.col(&b.Cols[i], int(rows))
		if d.err != nil {
			tuple.PutColBatch(b)
			return nil
		}
	}
	b.SetLen(int(rows))
	return b
}

// col decodes one column block for n rows into c (assumed reset).
func (d *decoder) col(c *tuple.Col, n int) {
	tag := d.byte()
	if d.err != nil {
		return
	}
	if tag == colAny {
		c.Any = make([]tuple.Value, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			v := d.value()
			c.Any = append(c.Any, v)
			if !v.IsNull() {
				c.Valid.Set(i)
			}
		}
		return
	}
	kind := tuple.ValueKind(tag)
	switch kind {
	case tuple.Null:
		return // all-null column
	case tuple.IntKind, tuple.FloatKind, tuple.StringKind, tuple.BoolKind, tuple.TimeKind:
	default:
		d.err = fmt.Errorf("wire: unknown column kind %d", tag)
		return
	}
	c.Kind = kind
	allValid := d.byte()
	if allValid != 0 {
		c.Valid.SetAll(n)
	} else {
		words := (n + 63) >> 6
		if 8*words > d.remaining() {
			d.fail()
			return
		}
		w := make([]uint64, words)
		for i := range w {
			w[i] = d.u64()
		}
		// Bits beyond the row count must be zero: they would corrupt later
		// rows if this batch's storage is recycled and regrown.
		if rem := uint(n & 63); rem != 0 && words > 0 && w[words-1]>>rem != 0 {
			d.fail()
			return
		}
		c.Valid.SetWords(w)
	}
	switch kind {
	case tuple.IntKind, tuple.TimeKind:
		if 8*n > d.remaining() {
			d.fail()
			return
		}
		c.I64 = make([]int64, 0, n)
		for i := 0; i < n; i++ {
			c.I64 = append(c.I64, d.i64())
		}
	case tuple.BoolKind:
		if n > d.remaining() {
			d.fail()
			return
		}
		c.I64 = make([]int64, 0, n)
		for i := 0; i < n; i++ {
			c.I64 = append(c.I64, int64(d.byte()&1))
		}
	case tuple.FloatKind:
		if 8*n > d.remaining() {
			d.fail()
			return
		}
		c.F64 = make([]float64, 0, n)
		for i := 0; i < n; i++ {
			c.F64 = append(c.F64, math.Float64frombits(d.u64()))
		}
	case tuple.StringKind:
		if n > d.remaining() {
			d.fail()
			return
		}
		c.Str = make([]string, 0, n)
		for i := 0; i < n; i++ {
			c.Str = append(c.Str, d.str())
		}
	}
}
