package wire

import (
	"math"
	"testing"

	"repro/internal/tuple"
)

func buildColBatch(rows []*tuple.Tuple) *tuple.ColBatch {
	b := tuple.GetColBatch(0)
	for _, t := range rows {
		b.AppendTuple(t)
	}
	return b
}

// eqColRows compares batches on the wire-visible fields: timestamps, values
// and punctuation (arrival/seq deliberately do not travel).
func eqColRows(t *testing.T, got, want *tuple.ColBatch) {
	t.Helper()
	if got.Len() != want.Len() || got.NumCols() != want.NumCols() || len(got.Puncts) != len(want.Puncts) {
		t.Fatalf("shape: got %d×%d/%d puncts, want %d×%d/%d",
			got.Len(), got.NumCols(), len(got.Puncts), want.Len(), want.NumCols(), len(want.Puncts))
	}
	for i, p := range want.Puncts {
		if got.Puncts[i] != p {
			t.Fatalf("punct %d: %+v, want %+v", i, got.Puncts[i], p)
		}
	}
	for r := 0; r < want.Len(); r++ {
		if got.Ts[r] != want.Ts[r] {
			t.Fatalf("row %d ts %v, want %v", r, got.Ts[r], want.Ts[r])
		}
		for c := 0; c < want.NumCols(); c++ {
			g, w := got.Value(c, r), want.Value(c, r)
			if g.Kind() != w.Kind() || g.String() != w.String() {
				t.Fatalf("row %d col %d: %v, want %v", r, c, g, w)
			}
		}
	}
}

func TestRoundTripTuplesCol(t *testing.T) {
	cases := map[string][]*tuple.Tuple{
		"typed": {
			tuple.NewData(10, tuple.Int(-3), tuple.Float(math.Pi), tuple.String_("héllo"), tuple.Bool(true), tuple.TimeVal(777)),
			tuple.NewData(20, tuple.Int(9), tuple.Float(-0.0), tuple.String_(""), tuple.Bool(false), tuple.TimeVal(tuple.MaxTime)),
		},
		"nulls": {
			tuple.NewData(1, tuple.Value{}, tuple.Int(1)),
			tuple.NewData(2, tuple.Int(2), tuple.Value{}),
			tuple.NewData(3, tuple.Value{}, tuple.Value{}),
		},
		"mixed-kind": {
			tuple.NewData(1, tuple.Int(1)),
			tuple.NewData(2, tuple.String_("x")),
			tuple.NewData(3, tuple.Value{}),
		},
		"punct-interleave": {
			tuple.NewPunct(5),
			tuple.NewData(10, tuple.Int(1)),
			tuple.NewPunct(10),
			tuple.NewData(20, tuple.Int(2)),
			tuple.NewPunct(20),
		},
		"empty": {},
	}
	for name, rows := range cases {
		t.Run(name, func(t *testing.T) {
			want := buildColBatch(rows)
			got := roundTrip(t, TuplesCol{ID: 42, B: want}).(TuplesCol)
			if got.ID != 42 {
				t.Fatalf("id %d", got.ID)
			}
			eqColRows(t, got.B, want)
			tuple.PutColBatch(want)
			tuple.PutColBatch(got.B)
		})
	}
}

// TestRoundTripTuplesColBarrier pins the checkpoint-barrier tag through the
// columnar frame: a PunctMark with Ckpt != 0 survives encode/decode at its
// exact position, closing the row-plane-only barrier gap.
func TestRoundTripTuplesColBarrier(t *testing.T) {
	want := tuple.GetColBatch(0)
	want.AppendTuple(tuple.NewData(10, tuple.Int(1)))
	bp := tuple.NewPunct(10)
	bp.Ckpt = 77
	want.AppendTuple(bp)
	want.AppendTuple(tuple.NewData(20, tuple.Int(2)))
	want.AppendPunctCkpt(20, 1<<40) // large tags must not truncate
	want.AppendPunct(25)            // plain mark rides alongside

	got := roundTrip(t, TuplesCol{ID: 7, B: want}).(TuplesCol)
	eqColRows(t, got.B, want)
	if got.B.Puncts[0].Ckpt != 77 || got.B.Puncts[1].Ckpt != 1<<40 || got.B.Puncts[2].Ckpt != 0 {
		t.Fatalf("barrier tags lost: %+v", got.B.Puncts)
	}
	tuple.PutColBatch(want)
	tuple.PutColBatch(got.B)
}

func TestTuplesColRejectsTruncation(t *testing.T) {
	b := buildColBatch([]*tuple.Tuple{
		tuple.NewPunct(1),
		tuple.NewData(10, tuple.Int(1), tuple.String_("abc"), tuple.Float(2.5)),
		tuple.NewData(20, tuple.Value{}, tuple.String_("d"), tuple.Float(-1)),
	})
	defer tuple.PutColBatch(b)
	payload := TuplesCol{ID: 1, B: b}.encode(nil)
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeFrame(TypeTuplesCol, payload[:cut], nil); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(payload))
		}
	}
	if _, err := DecodeFrame(TypeTuplesCol, append(payload, 0), nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestTuplesColRejectsHostileCounts(t *testing.T) {
	mk := func(f func(b []byte) []byte) []byte { return f(putU32(nil, 1)) }
	cases := map[string][]byte{
		"huge-rows": mk(func(b []byte) []byte {
			b = putUvarint(b, 1<<40) // rows the payload cannot carry
			return putUvarint(b, 0)
		}),
		"huge-puncts": mk(func(b []byte) []byte {
			b = putUvarint(b, 0)
			return putUvarint(b, 1<<40)
		}),
		"punct-pos-beyond-rows": mk(func(b []byte) []byte {
			b = putUvarint(b, 1)
			b = putUvarint(b, 1)
			b = putUvarint(b, 2) // pos 2 > rows 1
			b = putI64(b, 5)
			b = putI64(b, 10)
			return putUvarint(b, 0)
		}),
		"punct-pos-regresses": mk(func(b []byte) []byte {
			b = putUvarint(b, 1)
			b = putUvarint(b, 2)
			b = putUvarint(b, 1)
			b = putI64(b, 5)
			b = putUvarint(b, 0) // second pos 0 < first pos 1
			b = putI64(b, 6)
			b = putI64(b, 10)
			return putUvarint(b, 0)
		}),
		"huge-ncols": mk(func(b []byte) []byte {
			b = putUvarint(b, 0)
			b = putUvarint(b, 0)
			return putUvarint(b, 1<<20)
		}),
		"unknown-col-kind": mk(func(b []byte) []byte {
			b = putUvarint(b, 1)
			b = putUvarint(b, 0)
			b = putI64(b, 10)
			b = putUvarint(b, 1)
			return append(b, 0x77)
		}),
		"validity-bits-beyond-rows": mk(func(b []byte) []byte {
			b = putUvarint(b, 1)
			b = putUvarint(b, 0)
			b = putI64(b, 10)
			b = putUvarint(b, 1)
			b = append(b, byte(tuple.IntKind), 0) // not all-valid
			b = putU64(b, 0xFF)                   // bits 1..7 exceed row count 1
			return putI64(b, 42)
		}),
	}
	for name, payload := range cases {
		if _, err := DecodeFrame(TypeTuplesCol, payload, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestHelloAckFlagsCompat pins the capability handshake's backward
// compatibility: a flag-free ack encodes without the trailing field (so
// strict legacy decoders accept it), and a legacy flag-free payload decodes
// on a current endpoint as Flags == 0.
func TestHelloAckFlagsCompat(t *testing.T) {
	plain := HelloAck{Version: Version, Session: 9, Credits: 100}
	legacy := plain.encode(nil)
	withFlags := HelloAck{Version: Version, Session: 9, Credits: 100, Flags: CapColumnar}.encode(nil)
	if len(withFlags) != len(legacy)+2 {
		t.Fatalf("flagged ack must append exactly one u16: %d vs %d", len(withFlags), len(legacy))
	}
	got, err := DecodeFrame(TypeHelloAck, legacy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.(HelloAck) != plain {
		t.Fatalf("legacy ack decoded as %+v", got)
	}
	got, err = DecodeFrame(TypeHelloAck, withFlags, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack := got.(HelloAck); ack.Flags != CapColumnar {
		t.Fatalf("flags lost: %+v", ack)
	}
}
