package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tuple"
)

// Writer frames and buffers outbound frames. Frames accumulate in the
// bufio layer until Flush, so a burst of TUPLE frames costs one syscall;
// punctuation-bearing writers should flush immediately after a PUNCT or
// EOS — a bound that sits in a socket buffer delays exactly the
// reactivation it promises. Writer is not safe for concurrent use; callers
// serialize (the client does so under its session mutex).
type Writer struct {
	bw  *bufio.Writer
	buf []byte // reusable payload scratch

	frames uint64
	bytes  uint64
}

// NewWriter returns a framing writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 32*1024)}
}

// WriteMagic writes the binary-session preamble; the opener of a connection
// calls it once before the first frame.
func (w *Writer) WriteMagic() error {
	_, err := w.bw.Write(Magic[:])
	w.bytes += uint64(len(Magic))
	return err
}

// WriteFrame appends one frame to the output buffer.
func (w *Writer) WriteFrame(f Frame) error {
	w.buf = f.encode(w.buf[:0])
	if len(w.buf) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds MaxFrame", len(w.buf))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(w.buf)))
	hdr[4] = byte(f.Type())
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.frames++
	w.bytes += uint64(len(hdr)) + uint64(len(w.buf))
	return nil
}

// Flush pushes buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Frames reports the number of frames written.
func (w *Writer) Frames() uint64 { return w.frames }

// Bytes reports the number of bytes written (including framing overhead).
func (w *Writer) Bytes() uint64 { return w.bytes }

// Reader deframes and decodes inbound frames. The payload buffer is reused
// across frames (decoded frames never alias it) and decoded tuples come
// from the reader's magazine, so a steady tuple stream allocates nothing
// once warm. Reader is not safe for concurrent use.
type Reader struct {
	br  *bufio.Reader
	buf []byte
	mag tuple.Magazine

	frames uint64
	bytes  uint64
}

// NewReader returns a deframing reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 32*1024)}
}

// NewReaderBuffered wraps an existing bufio.Reader (the server's magic-peek
// path already holds one; re-wrapping would lose the peeked bytes).
func NewReaderBuffered(br *bufio.Reader) *Reader { return &Reader{br: br} }

// ReadMagic consumes and verifies the binary-session preamble.
func (r *Reader) ReadMagic() error {
	var m [4]byte
	if _, err := io.ReadFull(r.br, m[:]); err != nil {
		return err
	}
	r.bytes += uint64(len(m))
	if m != Magic {
		return fmt.Errorf("wire: bad magic %x", m)
	}
	return nil
}

// Next reads and decodes one frame. It returns io.EOF on a clean
// between-frames end of stream and io.ErrUnexpectedEOF on a mid-frame cut.
func (r *Reader) Next() (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		// ReadFull yields io.EOF only when zero header bytes arrived — a
		// clean between-frames close; a partial header is ErrUnexpectedEOF.
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d exceeds MaxFrame", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	r.frames++
	r.bytes += uint64(len(hdr)) + uint64(n)
	return DecodeFrame(FrameType(hdr[4]), r.buf, &r.mag)
}

// Release returns a tuple decoded by this reader to its pool. Only the
// goroutine running the reader may call it, and only for tuples whose
// ownership was not passed on (e.g. a dropped frame).
func (r *Reader) Release(t *tuple.Tuple) { r.mag.Put(t) }

// Frames reports the number of frames read.
func (r *Reader) Frames() uint64 { return r.frames }

// Bytes reports the number of bytes read (including framing overhead).
func (r *Reader) Bytes() uint64 { return r.bytes }
