package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tuple"
)

// fakeClock is a deterministic µs clock for tests.
type fakeClock struct {
	mu sync.Mutex
	t  int64
}

func (f *fakeClock) now() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t += 10
	return f.t
}

// record a full source→sink journey for one trace.
func recordJourney(c *Collector, trace uint64, ts tuple.Time) {
	c.Record(trace, "src", PhaseGen, ts)
	c.Record(trace, "union", PhaseEnqueue, ts)
	c.Record(trace, "src", PhaseApply, ts)
	c.Record(trace, "union", PhaseDequeue, ts)
	c.Record(trace, "sink", PhaseEnqueue, ts)
	c.Record(trace, "union", PhaseApply, ts)
	c.Record(trace, "sink", PhaseDequeue, ts)
	c.Record(trace, "sink", PhaseSink, ts)
}

func TestTimelineReconstruction(t *testing.T) {
	c := New(128)
	clk := &fakeClock{}
	c.SetClock(clk.now)

	tr := c.NewTrace()
	if tr == 0 {
		t.Fatal("NewTrace returned 0")
	}
	recordJourney(c, tr, 500)

	tls := c.Timelines(0)
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	if !tl.Complete {
		t.Fatalf("timeline not complete: %+v", tl)
	}
	if tl.Origin != "src" || tl.GenAt == 0 {
		t.Fatalf("origin = %q genAt = %d, want src/non-zero", tl.Origin, tl.GenAt)
	}
	if int64(tl.Ts) != 500 {
		t.Fatalf("ts = %d, want 500", int64(tl.Ts))
	}
	if len(tl.Hops) != 3 {
		t.Fatalf("hops = %d, want 3 (src, union, sink)", len(tl.Hops))
	}
	union := tl.Hops[1]
	if union.Node != "union" {
		t.Fatalf("hop[1] = %q, want union", union.Node)
	}
	if union.WaitUs <= 0 || union.ProcUs <= 0 {
		t.Fatalf("union wait/proc = %d/%d, want positive", union.WaitUs, union.ProcUs)
	}
	last := tl.Hops[2]
	if !last.Sink || last.Node != "sink" {
		t.Fatalf("terminal hop = %+v, want sink", last)
	}
	if tl.TotalUs != tl.LastAt-tl.FirstAt || tl.TotalUs <= 0 {
		t.Fatalf("total = %d (first %d last %d)", tl.TotalUs, tl.FirstAt, tl.LastAt)
	}
}

func TestTimelineIncomplete(t *testing.T) {
	c := New(64)
	tr := c.NewTrace()
	// No gen, no sink: only a middle hop survived (as after ring wrap).
	c.Record(tr, "union", PhaseDequeue, 100)
	c.Record(tr, "union", PhaseApply, 100)
	tls := c.Timelines(0)
	if len(tls) != 1 || tls[0].Complete {
		t.Fatalf("want 1 incomplete timeline, got %+v", tls)
	}
}

func TestRingOverflowCountsDropped(t *testing.T) {
	c := New(8)
	tr := c.NewTrace()
	for i := 0; i < 20; i++ {
		c.Record(tr, "n", PhaseApply, 1)
	}
	if got := c.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	if got := c.Total(); got != 20 {
		t.Fatalf("total = %d, want 20", got)
	}
	if got := len(c.Events(0)); got != 8 {
		t.Fatalf("retained = %d, want 8", got)
	}
}

func TestSlowestOrdersByTotal(t *testing.T) {
	c := New(256)
	clk := &fakeClock{}
	c.SetClock(clk.now)
	fast := c.NewTrace()
	recordJourney(c, fast, 1)
	slow := c.NewTrace()
	c.Record(slow, "src", PhaseGen, 2)
	clk.mu.Lock()
	clk.t += 100000 // a long stall in the middle of the slow journey
	clk.mu.Unlock()
	c.Record(slow, "sink", PhaseDequeue, 2)
	c.Record(slow, "sink", PhaseSink, 2)

	got := c.Slowest(1)
	if len(got) != 1 || got[0].Trace != slow {
		t.Fatalf("slowest = %+v, want trace %d", got, slow)
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.NewTrace() != 0 || c.Total() != 0 || c.Dropped() != 0 {
		t.Fatal("nil collector should report zeros")
	}
	c.Record(1, "n", PhaseGen, 0)
	c.SetClock(func() int64 { return 0 })
	if c.Timelines(0) != nil || c.Events(0) != nil {
		t.Fatal("nil collector should return nil slices")
	}
}

func TestHandlerAndJSONL(t *testing.T) {
	c := New(128)
	clk := &fakeClock{}
	c.SetClock(clk.now)
	recordJourney(c, c.NewTrace(), 7)

	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/?complete=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc struct {
		Total     uint64     `json:"total"`
		Dropped   uint64     `json:"dropped"`
		Timelines []Timeline `json:"timelines"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 8 || len(doc.Timelines) != 1 || !doc.Timelines[0].Complete {
		t.Fatalf("unexpected /spans doc: %+v", doc)
	}

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("jsonl lines = %d, want 8", len(lines))
	}
	var ev eventJSON
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Phase != "gen" || ev.Node != "src" {
		t.Fatalf("first event = %+v, want gen@src", ev)
	}
}

func TestInstrument(t *testing.T) {
	c := New(4)
	reg := metrics.NewRegistry()
	c.Instrument(reg)
	tr := c.NewTrace()
	for i := 0; i < 6; i++ {
		c.Record(tr, "n", PhaseApply, 1)
	}
	snap := reg.Snapshot()
	want := map[string]float64{
		"sm_span_events_total":  6,
		"sm_span_dropped_total": 2,
		"sm_span_traces_total":  1,
	}
	seen := 0
	for _, m := range snap {
		if v, ok := want[m.Name]; ok {
			seen++
			if m.Value != v {
				t.Fatalf("%s = %v, want %v", m.Name, m.Value, v)
			}
		}
	}
	if seen != len(want) {
		t.Fatalf("saw %d of %d sm_span_* metrics", seen, len(want))
	}
}
