// HTTP and JSONL export of the span ring.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/tuple"
)

// eventJSON is the export shape of a SpanEvent (phase by name).
type eventJSON struct {
	Seq   uint64     `json:"seq"`
	Trace uint64     `json:"trace"`
	Node  string     `json:"node"`
	Phase string     `json:"phase"`
	At    int64      `json:"at_us"`
	Ts    tuple.Time `json:"ts"`
}

func exportEvent(ev SpanEvent) eventJSON {
	return eventJSON{
		Seq: ev.Seq, Trace: ev.Trace, Node: ev.Node,
		Phase: ev.Phase.String(), At: ev.At, Ts: ev.Ts,
	}
}

// WriteJSONL writes every retained span event as one JSON object per line —
// the offline-analysis export (streamd -span-log dumps it at shutdown).
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode terminates each object with \n: JSONL
	for _, ev := range c.Events(0) {
		if err := enc.Encode(exportEvent(ev)); err != nil {
			return err
		}
	}
	return nil
}

// spansResponse is the /spans JSON document.
type spansResponse struct {
	Total     uint64     `json:"total"`
	Dropped   uint64     `json:"dropped"`
	Traces    uint64     `json:"traces"`
	Timelines []Timeline `json:"timelines"`
}

// Handler serves the span ring:
//
//	/spans                 recent timelines as JSON (?n=K limits, default 32;
//	                       ?complete=1 keeps only complete ones;
//	                       ?sort=slow orders by total latency descending;
//	                       ?format=jsonl streams raw events instead)
//
// 404s when the collector is nil (span collection disabled).
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c == nil {
			http.Error(w, "span collection disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		if q.Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			_ = c.WriteJSONL(w)
			return
		}
		max := 32
		if s := q.Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				max = v
			}
		}
		var tls []Timeline
		if q.Get("sort") == "slow" {
			tls = c.Slowest(max)
		} else if q.Get("complete") == "1" {
			// Filter before limiting: the newest traces are often still
			// in flight, and "the last K complete journeys" is the useful
			// answer.
			all := c.Timelines(0)
			kept := all[:0]
			for _, t := range all {
				if t.Complete {
					kept = append(kept, t)
				}
			}
			tls = kept
			if max > 0 && len(tls) > max {
				tls = tls[:max]
			}
		} else {
			tls = c.Timelines(max)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spansResponse{
			Total: c.Total(), Dropped: c.Dropped(), Traces: c.Traces(),
			Timelines: tls,
		})
	})
}

// WriteText renders timelines for terminals (streamd -stats and tests).
func WriteText(w io.Writer, tls []Timeline) {
	for _, t := range tls {
		state := "partial"
		if t.Complete {
			state = "complete"
		}
		fmt.Fprintf(w, "trace %d ts=%d %s total=%dµs origin=%s\n",
			t.Trace, int64(t.Ts), state, t.TotalUs, t.Origin)
		if t.NetUs >= 0 {
			fmt.Fprintf(w, "  net   %6dµs\n", t.NetUs)
		}
		for _, h := range t.Hops {
			fmt.Fprintf(w, "  %-12s wait=%6dµs proc=%6dµs", h.Node, h.WaitUs, h.ProcUs)
			if h.Sink {
				fmt.Fprint(w, "  [sink]")
			}
			fmt.Fprintln(w)
		}
	}
}
