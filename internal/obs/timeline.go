// Timeline reconstruction: group the span ring by trace ID and rebuild the
// causal per-hop story of each punctuation's journey source→sink.
package obs

import (
	"sort"

	"repro/internal/tuple"
)

// Hop is one node's handling of a traced punctuation. Instants are
// collector-clock µs; 0 means the phase was not observed (e.g. the gen-point
// source has no enqueue, a timeline cut short by ring wrap loses its head).
type Hop struct {
	Node string `json:"node"`
	// EnqueueAt: the punctuation was appended to an arc batch bound for
	// this node. DequeueAt: this node took delivery. ApplyAt: this node
	// emitted a punctuation attributed to the trace (watermark advance).
	EnqueueAt int64 `json:"enqueue_at,omitempty"`
	DequeueAt int64 `json:"dequeue_at,omitempty"`
	ApplyAt   int64 `json:"apply_at,omitempty"`
	// WaitUs is the arc wait (dequeue − enqueue); ProcUs the node's own
	// handling time (apply − dequeue, or sink − dequeue at a sink). −1
	// when an end is missing.
	WaitUs int64 `json:"wait_us"`
	ProcUs int64 `json:"proc_us"`
	// Sink marks the terminal hop.
	Sink bool `json:"sink,omitempty"`
}

// Timeline is one punctuation's reconstructed journey.
type Timeline struct {
	Trace uint64     `json:"trace"`
	Ts    tuple.Time `json:"ts"`
	// Origin names the gen point (source node, watchdog target, or remote
	// session); empty when the head of the timeline was lost to ring wrap.
	Origin string `json:"origin,omitempty"`
	GenAt  int64  `json:"gen_at,omitempty"`
	// Network hop, when the punctuation crossed the wire: the client's
	// send instant (mapped via skew estimate), the server's receive
	// instant, and their difference (−1 when either side is missing).
	NetSendAt int64 `json:"net_send_at,omitempty"`
	NetRecvAt int64 `json:"net_recv_at,omitempty"`
	NetUs     int64 `json:"net_us,omitempty"`
	// Hops in causal (event-sequence) order.
	Hops []Hop `json:"hops"`
	// Complete: the timeline has its head (gen or net_recv) and reached a
	// sink — nothing structural was lost to ring wrap.
	Complete bool `json:"complete"`
	// FirstAt/LastAt bound the observed events; TotalUs is their span.
	FirstAt int64 `json:"first_at"`
	LastAt  int64 `json:"last_at"`
	TotalUs int64 `json:"total_us"`
}

// Timelines rebuilds per-trace timelines from the retained events, ordered
// most-recent-first (by last event). max ≤ 0 returns all.
func (c *Collector) Timelines(max int) []Timeline {
	if c == nil {
		return nil
	}
	evs := c.Events(0)
	byTrace := make(map[uint64][]SpanEvent)
	order := make([]uint64, 0, 16) // traces by last-touched order
	for _, ev := range evs {
		if _, seen := byTrace[ev.Trace]; !seen {
			order = append(order, ev.Trace)
		}
		byTrace[ev.Trace] = append(byTrace[ev.Trace], ev)
	}
	out := make([]Timeline, 0, len(order))
	for _, tr := range order {
		out = append(out, buildTimeline(byTrace[tr]))
	}
	// Most recent first: sort by last event instant descending.
	sort.SliceStable(out, func(i, j int) bool { return out[i].LastAt > out[j].LastAt })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Slowest returns up to max complete timelines ordered by TotalUs
// descending — the "worst recent punctuation" view streamtop leads with.
func (c *Collector) Slowest(max int) []Timeline {
	all := c.Timelines(0)
	slow := all[:0]
	for _, t := range all {
		if t.Complete {
			slow = append(slow, t)
		}
	}
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].TotalUs > slow[j].TotalUs })
	if max > 0 && len(slow) > max {
		slow = slow[:max]
	}
	return slow
}

// buildTimeline folds one trace's events (any order) into a Timeline.
func buildTimeline(evs []SpanEvent) Timeline {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	t := Timeline{Trace: evs[0].Trace}
	hopIdx := make(map[string]int)
	hop := func(node string) *Hop {
		if i, ok := hopIdx[node]; ok {
			return &t.Hops[i]
		}
		t.Hops = append(t.Hops, Hop{Node: node, WaitUs: -1, ProcUs: -1})
		hopIdx[node] = len(t.Hops) - 1
		return &t.Hops[len(t.Hops)-1]
	}
	sawSink := false
	for _, ev := range evs {
		if t.FirstAt == 0 || ev.At < t.FirstAt {
			t.FirstAt = ev.At
		}
		if ev.At > t.LastAt {
			t.LastAt = ev.At
		}
		if ev.Ts != 0 {
			t.Ts = ev.Ts
		}
		switch ev.Phase {
		case PhaseGen:
			t.Origin, t.GenAt = ev.Node, ev.At
			hop(ev.Node) // the origin leads the hop list
		case PhaseNetSend:
			t.NetSendAt = ev.At
		case PhaseNetRecv:
			t.NetRecvAt = ev.At
			if t.Origin == "" {
				t.Origin = ev.Node // remote origin: the session name
			}
		case PhaseEnqueue:
			h := hop(ev.Node)
			if h.EnqueueAt == 0 {
				h.EnqueueAt = ev.At
			}
		case PhaseDequeue:
			h := hop(ev.Node)
			if h.DequeueAt == 0 {
				h.DequeueAt = ev.At
			}
		case PhaseApply:
			hop(ev.Node).ApplyAt = ev.At // last apply wins: latest advance
		case PhaseSink:
			h := hop(ev.Node)
			h.Sink = true
			if h.ApplyAt == 0 {
				h.ApplyAt = ev.At // consumption is the sink's "apply"
			}
			sawSink = true
		}
	}
	t.NetUs = -1
	if t.NetSendAt != 0 && t.NetRecvAt != 0 {
		t.NetUs = t.NetRecvAt - t.NetSendAt
	}
	for i := range t.Hops {
		h := &t.Hops[i]
		if h.EnqueueAt != 0 && h.DequeueAt != 0 {
			h.WaitUs = h.DequeueAt - h.EnqueueAt
		}
		if h.DequeueAt != 0 && h.ApplyAt != 0 {
			h.ProcUs = h.ApplyAt - h.DequeueAt
		}
	}
	t.Complete = sawSink && (t.GenAt != 0 || t.NetRecvAt != 0)
	t.TotalUs = t.LastAt - t.FirstAt
	return t
}
