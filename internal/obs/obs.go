// Package obs reconstructs punctuation-propagation timelines for the
// concurrent runtime. The paper's argument is about *when* enabling
// timestamps are generated and how they unblock operators; the aggregate
// counters (internal/metrics) say how often that happens but not *where a
// particular watermark stalled on its way from source to sink*. This
// package makes the propagation itself observable: every generated
// punctuation/ETS gets a trace ID that rides the punct tuple (and the PUNCT
// wire frame, behind a negotiated capability), and every hop records
// enqueue / dequeue / apply span events into a fixed-size ring. Timelines()
// groups the ring by trace and rebuilds the causal per-hop story —
// including the network hop, whose client-side send instant is mapped onto
// the server clock by the session's skew estimator.
//
// Recording is punctuation-only and O(1) per event under one short mutex,
// so a collector on the hot path costs nothing per data tuple and a few
// tens of nanoseconds per punctuation; a nil *Collector disables collection
// at the cost of one pointer check per site (the same contract as
// metrics.Tracer).
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tuple"
)

// Phase identifies where in its journey a punctuation was observed.
type Phase uint8

const (
	// PhaseGen: the punctuation was created — at a source's on-demand ETS
	// logic, the watchdog's forced ETS, or a remote client.
	PhaseGen Phase = iota
	// PhaseNetSend: a client wrote the PUNCT frame. At is the client's
	// send clock mapped onto the collector's clock via the session's skew
	// estimate, so NetRecv−NetSend approximates the network hop.
	PhaseNetSend
	// PhaseNetRecv: the server decoded the PUNCT frame and is about to
	// inject the punctuation into the engine.
	PhaseNetRecv
	// PhaseEnqueue: the punctuation was appended to an arc batch headed
	// for Node (the event names the *consumer*; the punct-flush rule sends
	// the batch immediately).
	PhaseEnqueue
	// PhaseDequeue: Node's goroutine took delivery of the punctuation.
	PhaseDequeue
	// PhaseApply: Node emitted a punctuation attributed to this trace —
	// its output watermark advanced because of it.
	PhaseApply
	// PhaseSink: the punctuation reached a node with no out arcs; the
	// timeline is complete.
	PhaseSink

	numPhases = 7
)

var phaseNames = [numPhases]string{
	"gen", "net_send", "net_recv", "enqueue", "dequeue", "apply", "sink",
}

// String returns the snake_case phase name used in JSON exports.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// SpanEvent is one observation of a traced punctuation at one phase.
type SpanEvent struct {
	// Seq is the collector-wide event sequence number (1-based).
	Seq uint64
	// Trace identifies the punctuation; all events of one propagation
	// share it.
	Trace uint64
	// Node is the operator (or session) the event happened at.
	Node string
	// Phase is where in the journey the event sits.
	Phase Phase
	// At is the collector clock at the event, µs.
	At int64
	// Ts is the punctuation bound (the ETS value) being propagated.
	Ts tuple.Time
}

// DefaultRingSize is the event capacity used when New is given n ≤ 0.
const DefaultRingSize = 8192

// Collector accumulates span events in a fixed-size ring. All methods are
// safe for concurrent use and nil-safe: a nil collector records nothing.
type Collector struct {
	mu   sync.Mutex
	ring []SpanEvent
	next uint64 // total events ever recorded; ring slot = (next-1) % len

	dropped   atomic.Uint64 // events overwritten before being read
	nextTrace atomic.Uint64 // last trace ID handed out
	now       func() int64  // clock, µs
}

// New returns a collector retaining the last n events (DefaultRingSize when
// n ≤ 0), stamped with wall-clock µs.
func New(n int) *Collector {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Collector{
		ring: make([]SpanEvent, n),
		now:  func() int64 { return time.Now().UnixMicro() },
	}
}

// SetClock replaces the event clock (µs). Pass the same clock the engine
// and server use so network span events land on a comparable axis. Call
// before recording begins.
func (c *Collector) SetClock(now func() int64) {
	if c == nil || now == nil {
		return
	}
	c.now = now
}

// NewTrace allocates a fresh trace ID (never 0). IDs are dense and
// collector-local; remote clients salt their own IDs (see client.Options)
// so one collector can hold both without collision.
func (c *Collector) NewTrace() uint64 {
	if c == nil {
		return 0
	}
	return c.nextTrace.Add(1)
}

// Record stamps and stores one span event at the current clock.
func (c *Collector) Record(trace uint64, node string, ph Phase, ts tuple.Time) {
	if c == nil || trace == 0 {
		return
	}
	c.RecordAt(trace, node, ph, c.now(), ts)
}

// RecordAt stores one span event at an explicit instant — the network path
// uses it to place the client's send on the server's clock axis.
func (c *Collector) RecordAt(trace uint64, node string, ph Phase, at int64, ts tuple.Time) {
	if c == nil || trace == 0 {
		return
	}
	c.mu.Lock()
	if c.next >= uint64(len(c.ring)) {
		c.dropped.Add(1) // the slot we are about to reuse was never read out
	}
	c.next++
	c.ring[(c.next-1)%uint64(len(c.ring))] = SpanEvent{
		Seq: c.next, Trace: trace, Node: node, Phase: ph, At: at, Ts: ts,
	}
	c.mu.Unlock()
}

// Total reports how many events were ever recorded.
func (c *Collector) Total() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// Dropped reports how many events were overwritten by ring wrap-around —
// the silent-loss counter exported as sm_span_dropped_total.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped.Load()
}

// Traces reports how many trace IDs this collector has handed out.
func (c *Collector) Traces() uint64 {
	if c == nil {
		return 0
	}
	return c.nextTrace.Load()
}

// Events returns up to max retained events, oldest first (all of them when
// max ≤ 0).
func (c *Collector) Events(max int) []SpanEvent {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.next
	retained := uint64(len(c.ring))
	if n < retained {
		retained = n
	}
	if max > 0 && uint64(max) < retained {
		retained = uint64(max)
	}
	out := make([]SpanEvent, 0, retained)
	for i := n - retained; i < n; i++ {
		out = append(out, c.ring[i%uint64(len(c.ring))])
	}
	return out
}

// Instrument registers the collector's own meters into reg:
// sm_span_events_total, sm_span_dropped_total, sm_span_traces_total.
func (c *Collector) Instrument(reg *metrics.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.CounterFunc("sm_span_events_total", func() int64 { return int64(c.Total()) })
	reg.CounterFunc("sm_span_dropped_total", func() int64 { return int64(c.Dropped()) })
	reg.CounterFunc("sm_span_traces_total", func() int64 { return int64(c.Traces()) })
}
