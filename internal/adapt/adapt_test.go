package adapt

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/tuple"
	"repro/internal/window"
)

func intSchema(name string) *tuple.Schema {
	return tuple.NewSchema(name, tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tuple.External)
}

// buildPipeline is a minimal src→sink engine; the source is the only node
// with out arcs, so it is the controller's single batch-tuning target.
func buildPipeline(t *testing.T, opts runtime.Options) (*runtime.Engine, *ops.Source, int, *atomic.Int64) {
	t.Helper()
	g := graph.New("adapt")
	src := ops.NewSource("src", intSchema("s"), 0)
	sid := g.AddNode(src)
	var got atomic.Int64
	g.AddNode(ops.NewSink("sink", func(tp *tuple.Tuple, _ tuple.Time) {
		if !tp.IsPunct() {
			got.Add(1)
		}
	}), sid)
	e, err := runtime.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, src, int(sid), &got
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDefaults(t *testing.T) {
	e, _, _, _ := buildPipeline(t, runtime.Options{})
	c := Attach(e) // nil Options.Adaptive → all defaults
	if c.Interval() != runtime.DefaultAdaptInterval {
		t.Errorf("Interval = %v, want %v", c.Interval(), runtime.DefaultAdaptInterval)
	}
	if c.minBatch != 1 || c.maxBatch != runtime.DefaultAdaptMaxBatch {
		t.Errorf("batch bounds = [%d,%d]", c.minBatch, c.maxBatch)
	}
	if c.skew != 0.25 || c.cooldown != 20*c.interval {
		t.Errorf("skew=%v cooldown=%v", c.skew, c.cooldown)
	}
	if len(c.nodes) != 1 {
		t.Errorf("want 1 batch tuner (the source), got %d", len(c.nodes))
	}
	if c.Retunes() != 0 {
		t.Errorf("fresh controller reports %d retunes", c.Retunes())
	}
	c.Stop() // never started: must not hang
}

func TestBatchClimbIssuesAndApplies(t *testing.T) {
	tr := metrics.NewTracer(1024)
	e, src, sid, got := buildPipeline(t, runtime.Options{BatchSize: 8, Trace: tr})
	c := New(e, &runtime.AdaptiveOptions{MaxBatch: 64})
	e.Start()

	ts := tuple.Time(1)
	burst := func(n int) {
		for i := 0; i < n; i++ {
			e.Ingest(src, tuple.NewData(ts, tuple.Int(int64(ts))))
			ts++
		}
		e.Ingest(src, tuple.NewPunct(ts))
		ts++
	}

	want := int64(0)
	burst(100)
	want += 100
	waitFor(t, "first burst", func() bool { return got.Load() == want })
	c.Step() // primes the rate window: no decision yet
	if c.Retunes() != 0 {
		t.Fatalf("priming tick issued %d retunes", c.Retunes())
	}

	burst(100)
	want += 100
	waitFor(t, "second burst", func() bool { return got.Load() == want })
	c.Step() // first loaded tick: probes upward, 8 → 16
	if b, _, _ := c.Decisions(); b != 1 {
		t.Fatalf("loaded tick issued %d batch retunes, want 1", b)
	}
	if tr.Count(metrics.EvRetuneBatch) != 1 {
		t.Fatal("no EvRetuneBatch trace event")
	}

	// The decision applies at the next punctuation boundary, not before.
	burst(100)
	want += 100
	waitFor(t, "retune to apply", func() bool { return e.NodeBatchSize(sid) == 16 })
	waitFor(t, "third burst", func() bool { return got.Load() == want })

	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if tr.Count(metrics.EvRetuneApplied) == 0 {
		t.Error("no EvRetuneApplied trace event")
	}
}

func TestBatchClampAndIdleReset(t *testing.T) {
	e, src, sid, got := buildPipeline(t, runtime.Options{BatchSize: 8})
	c := New(e, &runtime.AdaptiveOptions{MinBatch: 4, MaxBatch: 16})
	e.Start()

	ts := tuple.Time(1)
	burst := func(n int) {
		for i := 0; i < n; i++ {
			e.Ingest(src, tuple.NewData(ts, tuple.Int(int64(ts))))
			ts++
		}
		e.Ingest(src, tuple.NewPunct(ts))
		ts++
	}

	want := int64(0)
	for i := 0; i < 12; i++ {
		burst(50)
		want += 50
		waitFor(t, "burst", func() bool { return got.Load() == want })
		c.Step()
		if bs := e.NodeBatchSize(sid); bs < 4 || bs > 16 {
			t.Fatalf("applied batch size %d escaped [4,16]", bs)
		}
	}
	if c.Retunes() == 0 {
		t.Fatal("no retunes over 12 loaded ticks")
	}

	// Idle ticks must not issue decisions (nothing to learn).
	before := c.Retunes()
	tuner := c.nodes[0]
	c.Step()
	c.Step()
	if c.Retunes() != before {
		t.Errorf("idle ticks issued %d retunes", c.Retunes()-before)
	}
	if tuner.dir != 0 {
		t.Error("idle tick did not reset climb direction")
	}
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyGuardShrinks(t *testing.T) {
	lat := metrics.NewReservoir(256)
	for i := 0; i < 100; i++ {
		lat.Observe(5000) // 5ms observed vs 1ms target: guard trips
	}
	tr := metrics.NewTracer(64)
	e, src, _, got := buildPipeline(t, runtime.Options{BatchSize: 8, Trace: tr})
	c := New(e, &runtime.AdaptiveOptions{
		TargetP95: time.Millisecond,
		Latency:   lat,
	})
	e.Start()

	ts := tuple.Time(1)
	burst := func(n int) {
		for i := 0; i < n; i++ {
			e.Ingest(src, tuple.NewData(ts, tuple.Int(int64(ts))))
			ts++
		}
		e.Ingest(src, tuple.NewPunct(ts))
		ts++
	}
	burst(100)
	waitFor(t, "first burst", func() bool { return got.Load() == 100 })
	c.Step() // primes
	burst(100)
	waitFor(t, "second burst", func() bool { return got.Load() == 200 })
	c.Step() // guard trips: shrink 8 → 4 despite throughput
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	evs := tr.Recent(16)
	found := false
	for _, ev := range evs {
		if ev.Kind == metrics.EvRetuneBatch {
			found = true
			if ev.Value != 4 {
				t.Errorf("guard tick retuned to %d, want 4", ev.Value)
			}
		}
	}
	if !found {
		t.Fatal("latency guard issued no batch retune")
	}
}

// splitDriver runs a standalone splitter the way the engine would: tuples
// in, per-shard arcs out.
type splitDriver struct {
	s    *ops.Split
	in   *buffer.Queue
	ctx  *ops.Ctx
	arcs [][]*tuple.Tuple
}

func newSplitDriver(s *ops.Split) *splitDriver {
	d := &splitDriver{s: s, in: buffer.New("in"), arcs: make([][]*tuple.Tuple, s.Shards())}
	d.ctx = &ops.Ctx{
		Ins:    []*buffer.Queue{d.in},
		EmitTo: func(i int, t *tuple.Tuple) { d.arcs[i] = append(d.arcs[i], t) },
		Now:    func() tuple.Time { return 0 },
	}
	return d
}

func (d *splitDriver) run() {
	for d.s.More(d.ctx) {
		d.s.Exec(d.ctx)
	}
}

// hotKeys returns distinct int keys whose buckets all map to shard 0 under
// the canonical bucket%shards assignment, each in a distinct bucket.
func hotKeys(shards, n int) []int64 {
	var keys []int64
	seen := map[uint64]bool{}
	for k := int64(0); len(keys) < n; k++ {
		b := tuple.Int(k).Hash() % ops.SplitBuckets
		if int(b)%shards == 0 && !seen[b] {
			seen[b] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestShardRebalanceAtBarrier(t *testing.T) {
	tr := metrics.NewTracer(256)
	e, _, _, _ := buildPipeline(t, runtime.Options{Trace: tr})
	c := New(e, &runtime.AdaptiveOptions{NoBatchTune: true, NoJoinReorder: true})

	s := ops.NewSplit("sp", nil, 2, 0)
	d := newSplitDriver(s)
	gt := c.watchGroup(runtime.ShardGroup{Name: "agg", Shards: 2, Splitters: []*ops.Split{s}})

	// Everything lands on shard 0: four hot buckets, all canonical-mapped
	// to shard 0, loaded equally.
	keys := hotKeys(2, 4)
	ts := tuple.Time(1)
	for round := 0; round < 50; round++ {
		for _, k := range keys {
			d.in.Push(tuple.NewData(ts, tuple.Int(k)))
			ts++
		}
	}
	d.run()

	c.Step()
	if _, sh, _ := c.Decisions(); sh != 1 {
		t.Fatalf("skewed load issued %d shard retunes, want 1", sh)
	}
	if !s.RetargetPending() {
		t.Fatal("no retarget pending after the rebalance decision")
	}
	if tr.Count(metrics.EvRetuneShards) != 1 {
		t.Fatal("no EvRetuneShards trace event")
	}

	// While the barrier is in flight, no second decision may stack.
	c.Step()
	if _, sh, _ := c.Decisions(); sh != 1 {
		t.Fatal("controller stacked a retarget on a pending barrier")
	}

	// The punctuation crossing the barrier promotes the new table...
	d.in.Push(tuple.NewPunct(ts + 1000))
	d.run()
	if s.RetargetPending() {
		t.Fatal("retarget still pending after barrier punctuation")
	}
	if s.AssignVersion() != 1 {
		t.Fatalf("AssignVersion = %d, want 1", s.AssignVersion())
	}
	if c.shardApplies.Load() != 1 {
		t.Fatalf("shardApplies = %d, want 1", c.shardApplies.Load())
	}
	if tr.Count(metrics.EvRetuneApplied) != 1 {
		t.Fatal("no EvRetuneApplied trace event from the OnApply hook")
	}

	// ...and the promoted assignment actually spreads the hot buckets.
	assign := s.Assignment()
	loads := make([]uint64, 2)
	for b, w := range gt.win {
		loads[assign[b]] += w
	}
	if skew := partition.Skew(loads); skew > 0.25 {
		t.Errorf("post-rebalance skew %.3f over the window still above threshold", skew)
	}

	// Cooldown: fresh skew right after a rebalance must wait.
	for round := 0; round < 50; round++ {
		for _, k := range keys {
			d.in.Push(tuple.NewData(ts, tuple.Int(k)))
			ts++
		}
	}
	d.run()
	c.Step()
	if _, sh, _ := c.Decisions(); sh != 1 {
		t.Fatal("rebalance issued inside the cooldown window")
	}
}

func TestProbeReorderCheapestFirst(t *testing.T) {
	tr := metrics.NewTracer(64)
	e, _, _, _ := buildPipeline(t, runtime.Options{Trace: tr})
	c := New(e, &runtime.AdaptiveOptions{NoBatchTune: true, NoRebalance: true})

	j := ops.NewMultiEquiJoin("mj", nil, window.TimeWindow(100000), 0, 0, 0)
	jt := &joinTuner{id: -1, name: "mj", j: j} // id -1: decision only, no live node

	ins := make([]*buffer.Queue, 3)
	for i := range ins {
		ins[i] = buffer.New("in")
	}
	ctx := &ops.Ctx{
		Ins:  ins,
		Emit: func(*tuple.Tuple) {},
		Now:  func() tuple.Time { return 0 },
	}
	feed := func(n int, start tuple.Time) tuple.Time {
		ts := start
		for i := 0; i < n; i++ {
			// Inputs 0 and 1 hold key 1 (always match); input 2 holds key
			// 99 (never matches) — its fanout is exactly zero.
			ins[0].Push(tuple.NewData(ts, tuple.Int(1)))
			ins[1].Push(tuple.NewData(ts, tuple.Int(1)))
			ins[2].Push(tuple.NewData(ts, tuple.Int(99)))
			ts++
		}
		for i := range ins {
			ins[i].Push(tuple.NewPunct(ts))
		}
		ts++
		for j.More(ctx) {
			j.Exec(ctx)
		}
		return ts
	}

	ts := feed(40, 1)
	c.tuneProbes(jt) // primes the per-input deltas
	if _, _, p := c.Decisions(); p != 0 {
		t.Fatal("priming tick issued a probe retune")
	}
	feed(40, ts)
	c.tuneProbes(jt)
	if _, _, p := c.Decisions(); p != 1 {
		t.Fatalf("probe retunes = %d, want 1", p)
	}
	if tr.Count(metrics.EvRetuneProbe) != 1 {
		t.Fatal("no EvRetuneProbe trace event")
	}
	var packed int64 = -1
	for _, ev := range tr.Recent(16) {
		if ev.Kind == metrics.EvRetuneProbe {
			packed = ev.Value
		}
	}
	if packed&0xf != 2 {
		t.Errorf("proposed order %#x does not probe the empty-fanout input first", packed)
	}
}

func TestProbeReorderNeedsSamples(t *testing.T) {
	e, _, _, _ := buildPipeline(t, runtime.Options{})
	c := New(e, &runtime.AdaptiveOptions{})
	j := ops.NewMultiEquiJoin("mj", nil, window.TimeWindow(1000), 0, 0, 0)
	jt := &joinTuner{id: -1, name: "mj", j: j}
	c.tuneProbes(jt)
	c.tuneProbes(jt) // zero probes since priming: below minProbeSample
	if _, _, p := c.Decisions(); p != 0 {
		t.Fatalf("probe retune issued with no samples (%d)", p)
	}
}

func TestPackOrder(t *testing.T) {
	if v := packOrder([]int{2, 0, 1}); v != 0x102 {
		t.Errorf("packOrder([2 0 1]) = %#x, want 0x102", v)
	}
	if v := packOrder([]int{0, 1, 2, 3}); v != 0x3210 {
		t.Errorf("packOrder([0 1 2 3]) = %#x, want 0x3210", v)
	}
}

func TestStartStopLoop(t *testing.T) {
	e, src, _, got := buildPipeline(t, runtime.Options{BatchSize: 8})
	c := New(e, &runtime.AdaptiveOptions{Interval: time.Millisecond, MaxBatch: 64})
	e.Start()
	c.Start()
	c.Start() // idempotent

	ts := tuple.Time(1)
	deadline := time.Now().Add(2 * time.Second)
	for c.Retunes() == 0 && time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			e.Ingest(src, tuple.NewData(ts, tuple.Int(int64(ts))))
			ts++
		}
		e.Ingest(src, tuple.NewPunct(ts))
		ts++
		time.Sleep(2 * time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if c.Retunes() == 0 {
		t.Fatal("ticker loop issued no retunes under sustained load")
	}
	e.CloseStream(src)
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = got
}
