// Package adapt closes the metrics loop: a per-engine controller
// periodically reads the engine's live instruments, decides, and issues
// reconfiguration actions that the runtime applies only at punctuation
// boundaries — the quiescent points the paper's ETS machinery creates on
// every arc. Three actuators:
//
//   - batch tuning: per-node batch size is hill-climbed on observed
//     throughput, with a p95-latency guard that shrinks batches while the
//     sink-observed p95 exceeds the target;
//   - shard rebalance: when the splitter bucket loads drift skewed, a new
//     bucket→shard table (partition.Balance) is installed behind an
//     event-time barrier and promoted by the punctuation that crosses it;
//   - join probe reordering: a multiway join's per-input selectivities
//     order its probe sequence cheapest-first, swapped via the runtime's
//     apply-at-punctuation protocol.
//
// The controller only observes concurrency-safe surfaces (atomic counters,
// swapped tables) and never touches operator state directly: every
// mutation travels through Engine.Reconfigure or Split.Retarget, both of
// which defer the swap to a boundary where the affected state is
// quiescent.
package adapt

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/tuple"
)

// minProbeSample is the number of new probes an input must have seen in a
// tick before its fanout estimate is trusted for reordering.
const minProbeSample = 32

// probeHysteresis: a proposed probe order is only issued when the input
// promoted at the first differing position has a fanout at most this
// fraction of the one it displaces. Prevents flapping on noise.
const probeHysteresis = 0.8

// rateSettleDiv is the hill climber's settle band, as a divisor: a rate
// within ±last/rateSettleDiv of the previous tick is a plateau and the
// batch size holds. Without it the climber oscillates between the two
// sizes straddling the optimum forever, paying a reconfiguration at every
// tick for no throughput.
const rateSettleDiv = 20

// Controller drives one engine's observe→decide→apply loop. Create with
// New or Attach, then either Start/Stop the timer goroutine or call Step
// directly (deterministic ticks for tests and benches).
type Controller struct {
	e        *runtime.Engine
	o        runtime.AdaptiveOptions
	interval time.Duration
	minBatch int
	maxBatch int
	skew     float64
	cooldown time.Duration

	nodes  []*batchTuner
	groups []*groupTuner
	joins  []*joinTuner

	ticks        *metrics.Counter64
	batchRetunes *metrics.Counter64
	shardRetunes *metrics.Counter64
	probeRetunes *metrics.Counter64
	shardApplies *metrics.Counter64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// batchTuner hill-climbs one node's batch size: keep moving in the current
// direction while throughput improves, reverse when it degrades, hold when
// it plateaus (the settle band), and shrink unconditionally while the
// latency guard trips.
type batchTuner struct {
	id   int
	name string
	ins  runtime.NodeInstruments
	wOut metrics.RateWindow
	last uint64 // throughput observed on the previous tick
	dir  int    // +1 grow, -1 shrink, 0 undecided
}

// groupTuner watches one sharded operator's splitter group. Bucket loads
// are folded into an exponentially decayed window so the rebalance chases
// the current hot set, not all-time totals.
type groupTuner struct {
	g       runtime.ShardGroup
	prev    [][]uint64 // per splitter: cumulative bucket loads at last tick
	win     []uint64   // decayed per-bucket load window (summed over splitters)
	lastMax tuple.Time // max routed ts at last tick, for the barrier lead
	lastAt  time.Time  // wall time of the last issued retarget
}

// joinTuner watches one multiway join's probe statistics.
type joinTuner struct {
	id   int
	name string
	j    *ops.MultiJoin
	prev []ops.ProbeStat
}

// New builds a controller for e from opts (nil means all defaults). The
// engine graph is inspected once, here: nodes with out arcs get batch
// tuners, splitter groups get rebalance state and their OnApply trace
// hooks, multiway equi-joins get probe tuners.
func New(e *runtime.Engine, opts *runtime.AdaptiveOptions) *Controller {
	var o runtime.AdaptiveOptions
	if opts != nil {
		o = *opts
	}
	c := &Controller{
		e:        e,
		o:        o,
		interval: o.Interval,
		minBatch: o.MinBatch,
		maxBatch: o.MaxBatch,
		skew:     o.SkewThreshold,
		cooldown: o.RebalanceMinInterval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if c.interval <= 0 {
		c.interval = runtime.DefaultAdaptInterval
	}
	if c.minBatch <= 0 {
		c.minBatch = 1
	}
	if c.maxBatch <= 0 {
		c.maxBatch = runtime.DefaultAdaptMaxBatch
	}
	if c.maxBatch < c.minBatch {
		c.maxBatch = c.minBatch
	}
	if c.skew <= 0 {
		c.skew = 0.25
	}
	if c.cooldown <= 0 {
		c.cooldown = 20 * c.interval
	}
	reg := e.Registry()
	c.ticks = reg.Counter("sm_adapt_ticks_total")
	c.batchRetunes = reg.Counter("sm_adapt_batch_retunes_total")
	c.shardRetunes = reg.Counter("sm_adapt_shard_retunes_total")
	c.probeRetunes = reg.Counter("sm_adapt_probe_retunes_total")
	c.shardApplies = reg.Counter("sm_adapt_shard_applies_total")

	for id := 0; id < e.NumNodes(); id++ {
		if !o.NoBatchTune && e.NodeFanOut(id) > 0 {
			c.nodes = append(c.nodes, &batchTuner{
				id:   id,
				name: e.NodeName(id),
				ins:  e.NodeInstruments(id),
			})
		}
		if o.NoJoinReorder {
			continue
		}
		if j, ok := e.NodeOperator(id).(*ops.MultiJoin); ok && j.KeyCols() != nil && j.NumInputs() > 2 {
			c.joins = append(c.joins, &joinTuner{id: id, name: e.NodeName(id), j: j})
		}
	}
	if !o.NoRebalance {
		for _, g := range e.ShardGroups() {
			c.watchGroup(g)
		}
	}
	return c
}

// watchGroup registers one splitter group with the controller: rebalance
// state plus the OnApply hooks that witness barrier promotion (counter and
// EvRetuneApplied trace event, value = the barrier timestamp).
func (c *Controller) watchGroup(g runtime.ShardGroup) *groupTuner {
	gt := &groupTuner{
		g:   g,
		win: make([]uint64, ops.SplitBuckets),
	}
	for _, s := range g.Splitters {
		gt.prev = append(gt.prev, make([]uint64, ops.SplitBuckets))
		name := g.Name
		s.OnApply(func(barrier tuple.Time) {
			c.shardApplies.Inc()
			if tr := c.e.Tracer(); tr != nil {
				tr.Emit(metrics.EvRetuneApplied, name, barrier, int64(barrier))
			}
		})
	}
	c.groups = append(c.groups, gt)
	return gt
}

// Attach builds a controller from the engine's own Options.Adaptive (nil
// Adaptive attaches with all defaults).
func Attach(e *runtime.Engine) *Controller {
	return New(e, e.EngineOptions().Adaptive)
}

// Start launches the tick goroutine. Idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			tk := time.NewTicker(c.interval)
			defer tk.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tk.C:
					c.Step()
				}
			}
		}()
	})
}

// Stop halts the tick goroutine and waits for it to exit. Idempotent; a
// Controller that was never started stops immediately.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) })
	<-c.done
}

// Interval reports the resolved tick cadence.
func (c *Controller) Interval() time.Duration { return c.interval }

// Decisions reports how many reconfigurations each actuator has issued.
func (c *Controller) Decisions() (batch, shard, probe uint64) {
	return c.batchRetunes.Load(), c.shardRetunes.Load(), c.probeRetunes.Load()
}

// Retunes reports the total reconfigurations issued across all actuators.
func (c *Controller) Retunes() uint64 {
	b, s, p := c.Decisions()
	return b + s + p
}

// Step runs one observe→decide pass: every actuator reads its instrument
// deltas since the previous Step and issues at most one action per target.
// Exported so tests and benches can drive deterministic ticks without the
// timer goroutine; not safe for concurrent use with Start.
func (c *Controller) Step() {
	c.ticks.Inc()
	latHigh := c.latencyHigh()
	for _, n := range c.nodes {
		c.tuneBatch(n, latHigh)
	}
	now := time.Now()
	for _, g := range c.groups {
		c.tuneShards(g, now)
	}
	for _, j := range c.joins {
		c.tuneProbes(j)
	}
}

// latencyHigh reports whether the guard reservoir's p95 currently exceeds
// the target. Reservoir values are tuple.Time spans (microseconds), as
// produced by sinks observing now-minus-arrival on the virtual clock.
func (c *Controller) latencyHigh() bool {
	if c.o.Latency == nil || c.o.TargetP95 <= 0 || c.o.Latency.Count() == 0 {
		return false
	}
	p95 := c.o.Latency.Snapshot().Percentile(0.95)
	return p95 > c.o.TargetP95.Microseconds()
}

func (c *Controller) tuneBatch(n *batchTuner, latHigh bool) {
	rate := n.ins.TuplesOut.Rate(&n.wOut)
	cur := c.e.NodeBatchSize(n.id)
	if cur <= 0 {
		return
	}
	if rate == 0 {
		// Idle tick: nothing to learn, and remembering a zero would make
		// any future rate look like an improvement in a stale direction.
		n.last = 0
		n.dir = 0
		return
	}
	next := cur
	band := n.last / rateSettleDiv
	switch {
	case latHigh:
		// Latency guard: batches are sitting too long; shrink regardless
		// of throughput until the p95 recovers.
		next = cur / 2
		n.dir = -1
	case n.dir == 0:
		// First loaded tick (or just after idle): probe upward.
		n.dir = 1
		next = cur * 2
	case rate > n.last+band:
		// Meaningful improvement: keep climbing in the current direction.
		if n.dir > 0 {
			next = cur * 2
		} else {
			next = cur / 2
		}
	case rate+band < n.last:
		// Meaningful degradation: reverse.
		n.dir = -n.dir
		if n.dir > 0 {
			next = cur * 2
		} else {
			next = cur / 2
		}
	default:
		// Plateau: the last move bought nothing measurable — hold the
		// current size instead of oscillating around the optimum.
	}
	if next < c.minBatch {
		next = c.minBatch
		n.dir = 1
	}
	if next > c.maxBatch {
		next = c.maxBatch
		n.dir = -1
	}
	n.last = rate
	if next == cur {
		return
	}
	c.e.Reconfigure(n.id, runtime.Reconfig{BatchSize: next})
	c.batchRetunes.Inc()
	if tr := c.e.Tracer(); tr != nil {
		tr.Emit(metrics.EvRetuneBatch, n.name, c.e.Now(), int64(next))
	}
}

func (c *Controller) tuneShards(g *groupTuner, now time.Time) {
	// Fold this tick's routing deltas into the decayed window; the window
	// halves every tick, so roughly the last few ticks dominate.
	maxTs := tuple.MinTime
	for si, s := range g.g.Splitters {
		cum := s.BucketLoads().Snapshot()
		for b := range cum {
			d := cum[b] - g.prev[si][b]
			g.prev[si][b] = cum[b]
			if si == 0 {
				g.win[b] = g.win[b] / 2
			}
			g.win[b] += d
		}
		if ts := s.MaxTs(); ts > maxTs {
			maxTs = ts
		}
	}
	lead := c.o.BarrierLead
	if lead <= 0 {
		// Default lead: one tick's worth of observed event-time advance,
		// so the fence sits in the near future of the streams.
		lead = maxTs - g.lastMax
		if lead < 1 {
			lead = 1
		}
	}
	g.lastMax = maxTs
	for _, s := range g.g.Splitters {
		if s.RetargetPending() {
			return // a barrier is in flight; never stack retargets
		}
	}
	assign := g.g.Splitters[0].Assignment()
	loads := make([]uint64, g.g.Shards)
	for b, w := range g.win {
		loads[assign[b]] += w
	}
	if partition.Skew(loads) <= c.skew {
		return
	}
	if !g.lastAt.IsZero() && now.Sub(g.lastAt) < c.cooldown {
		return
	}
	next := partition.Balance(g.win, g.g.Shards)
	same := true
	for b := range next {
		if next[b] != assign[b] {
			same = false
			break
		}
	}
	if same {
		return // skewed input, but no better placement exists
	}
	barrier := maxTs + lead
	for _, s := range g.g.Splitters {
		// Pre-checked pending==nil above and this controller is the only
		// retarget issuer, so every member accepts the identical table —
		// co-location across ports is preserved through the swap.
		s.Retarget(next, barrier)
	}
	g.lastAt = now
	c.shardRetunes.Inc()
	if tr := c.e.Tracer(); tr != nil {
		tr.Emit(metrics.EvRetuneShards, g.g.Name, c.e.Now(), int64(barrier))
	}
}

func (c *Controller) tuneProbes(j *joinTuner) {
	stats := j.j.ProbeStats()
	prev := j.prev
	j.prev = stats
	if prev == nil {
		return // first tick primes the deltas
	}
	n := len(stats)
	fanout := make([]float64, n)
	for i := range stats {
		probes := stats[i].Probes - prev[i].Probes
		passed := stats[i].Passed - prev[i].Passed
		if probes < minProbeSample {
			return // not enough fresh signal on every input this tick
		}
		fanout[i] = float64(passed) / float64(probes)
	}
	cur := j.j.ProbeOrder()
	pos := make([]int, n) // input → its position in the current order
	for p, in := range cur {
		pos[in] = p
	}
	proposed := make([]int, n)
	copy(proposed, cur)
	sort.SliceStable(proposed, func(a, b int) bool {
		fa, fb := fanout[proposed[a]], fanout[proposed[b]]
		if fa != fb {
			return fa < fb
		}
		return pos[proposed[a]] < pos[proposed[b]] // ties keep current order
	})
	firstDiff := -1
	for p := range proposed {
		if proposed[p] != cur[p] {
			firstDiff = p
			break
		}
	}
	if firstDiff < 0 {
		return
	}
	// Hysteresis: the promoted input must be meaningfully cheaper than the
	// one it displaces, or noise would flap the order every tick.
	if fanout[proposed[firstDiff]] > probeHysteresis*fanout[cur[firstDiff]] {
		return
	}
	ord := proposed
	mj := j.j
	c.e.Reconfigure(j.id, runtime.Reconfig{
		Apply: func(ops.Operator) { mj.SetProbeOrder(ord) },
	})
	c.probeRetunes.Inc()
	if tr := c.e.Tracer(); tr != nil {
		tr.Emit(metrics.EvRetuneProbe, j.name, c.e.Now(), packOrder(ord))
	}
}

// packOrder packs a probe order into an int64, one input index per nibble,
// position 0 in the lowest nibble — readable straight off the trace line.
func packOrder(ord []int) int64 {
	var v int64
	for p := len(ord) - 1; p >= 0; p-- {
		v = v<<4 | int64(ord[p]&0xf)
	}
	return v
}
