package exec

import (
	"testing"

	"repro/internal/ets"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
	"repro/internal/window"
)

// TestCascadedUnionsOnDemand verifies that backtracking traverses *multiple*
// IWP levels: union(s1, s2) feeds union(·, s3). A tuple on s1 alone must
// trigger ETS generation at both s2 (to release the inner union) and s3 (to
// release the outer one) — all within a single arrival's processing.
func TestCascadedUnionsOnDemand(t *testing.T) {
	g := graph.New("cascade")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	s3 := ops.NewSource("s3", sch, 0)
	n1 := g.AddNode(s1)
	n2 := g.AddNode(s2)
	n3 := g.AddNode(s3)
	u1 := g.AddNode(ops.NewUnion("u1", nil, 2, ops.TSM), n1, n2)
	u2 := g.AddNode(ops.NewUnion("u2", nil, 2, ops.TSM), u1, n3)
	var out []*tuple.Tuple
	var at []tuple.Time
	g.AddNode(ops.NewSink("k", func(tp *tuple.Tuple, now tuple.Time) {
		out = append(out, tp)
		at = append(at, now)
	}), u2)

	clock := tuple.Time(0)
	pol := &ets.OnDemand{}
	e := MustNew(g, pol, func() tuple.Time { return clock })
	clock = 1000
	s1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	if len(out) != 1 || at[0] != 1000 {
		t.Fatalf("cascaded delivery failed: out=%v at=%v", out, at)
	}
	// Both idle sources produced an ETS.
	if s2.ETSEmitted() == 0 || s3.ETSEmitted() == 0 {
		t.Fatalf("ETS per source: s2=%d s3=%d", s2.ETSEmitted(), s3.ETSEmitted())
	}
	if e.Step() {
		t.Fatal("engine must quiesce after delivery")
	}
	// Repeat at a later clock to prove no state was wedged.
	clock = 2000
	s1.Ingest(tuple.NewData(0, tuple.Int(2)), clock)
	e.Run(1000)
	if len(out) != 2 || at[1] != 2000 {
		t.Fatalf("second delivery failed: %v at %v", out, at)
	}
}

// TestAggregateFlushedByOnDemandETS verifies the blocking-operator benefit:
// a tumbling aggregate downstream of a union over a sparse stream emits its
// windows as soon as the bound passes, carried by on-demand punctuation,
// instead of waiting for the next (distant) data tuple.
func TestAggregateFlushedByOnDemandETS(t *testing.T) {
	g := graph.New("aggflush")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	n1 := g.AddNode(s1)
	n2 := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), n1, n2)
	agg := ops.NewAggregate("agg", nil, 1000, -1, ops.AggSpec{Fn: ops.Count})
	an := g.AddNode(agg, u)
	var rows []*tuple.Tuple
	var at []tuple.Time
	g.AddNode(ops.NewSink("k", func(tp *tuple.Tuple, now tuple.Time) {
		rows = append(rows, tp)
		at = append(at, now)
	}), an)

	clock := tuple.Time(0)
	e := MustNew(g, &ets.OnDemand{}, func() tuple.Time { return clock })

	// Three tuples inside window [0, 1000).
	for _, ts := range []tuple.Time{100, 400, 900} {
		clock = ts
		s1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
		e.Run(1000)
	}
	if len(rows) != 0 {
		t.Fatalf("window emitted early: %v", rows)
	}
	// Clock passes the window end; the next arrival's ETS flushes it even
	// though the arrival itself lands in a later window.
	clock = 2500
	s1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	if len(rows) != 1 {
		t.Fatalf("window not flushed: %v", rows)
	}
	if rows[0].Ts != 1000 || rows[0].Vals[0].AsInt() != 3 {
		t.Fatalf("window row = %v", rows[0])
	}
	if at[0] != 2500 {
		t.Errorf("flush clock = %v", at[0])
	}
}

// TestJoinIntoUnionPipeline composes a join feeding a union: punctuation
// produced by the join (Figure 6's "if neither input contains a data tuple
// ... add a punctuation tuple") must keep the downstream union live.
func TestJoinIntoUnionPipeline(t *testing.T) {
	g := graph.New("mix")
	sch := tuple.NewSchema("s", tuple.Field{Name: "k", Kind: tuple.IntKind})
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	s3 := ops.NewSource("s3", sch, 0)
	n1 := g.AddNode(s1)
	n2 := g.AddNode(s2)
	n3 := g.AddNode(s3)
	j := g.AddNode(ops.NewWindowJoin("j", nil, window.TimeWindow(10*tuple.Second),
		ops.EquiJoin(0, 0), ops.TSM), n1, n2)
	// Project the join output back to single-column so the union inputs
	// match shape (not enforced here, but keep it tidy).
	p := g.AddNode(ops.NewProject("p", nil, []int{0}), j)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), p, n3)
	var out []*tuple.Tuple
	g.AddNode(ops.NewSink("k", func(tp *tuple.Tuple, _ tuple.Time) { out = append(out, tp) }), u)

	clock := tuple.Time(0)
	e := MustNew(g, &ets.OnDemand{}, func() tuple.Time { return clock })

	// A tuple on s3 must not wait on the (idle) join path.
	clock = 1000
	s3.Ingest(tuple.NewData(0, tuple.Int(99)), clock)
	e.Run(10000)
	if len(out) != 1 || out[0].Vals[0].AsInt() != 99 {
		t.Fatalf("union starved by idle join path: %v", out)
	}
	// Now a matching pair through the join; both paths live.
	clock = 2000
	s1.Ingest(tuple.NewData(0, tuple.Int(7)), clock)
	e.Run(10000)
	clock = 2100
	s2.Ingest(tuple.NewData(0, tuple.Int(7)), clock)
	e.Run(10000)
	if len(out) != 2 || out[1].Vals[0].AsInt() != 7 {
		t.Fatalf("join result missing: %v", out)
	}
}

// TestNoSpinAtQuiescence guards against ETS busy-loops: after a delivery,
// repeated Step calls must return false even though the policy could mint
// ever-growing timestamps if asked.
func TestNoSpinAtQuiescence(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	pol := &ets.OnDemand{}
	e := MustNew(f.g, pol, func() tuple.Time { return clock })
	clock = 100
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	before := pol.Generated
	for i := 0; i < 100; i++ {
		clock++ // even with an advancing clock...
		if e.Step() {
			t.Fatal("engine stepped while nothing is idle-waiting")
		}
	}
	if pol.Generated != before {
		t.Fatalf("policy generated %d ETS at quiescence", pol.Generated-before)
	}
}

// TestDeepPipelineBacktrack exercises a long chain: source → 5 selections →
// union with a silent stream. Backtracking must walk the whole chain.
func TestDeepPipelineBacktrack(t *testing.T) {
	g := graph.New("deep")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	n1 := g.AddNode(s1)
	n2 := g.AddNode(s2)
	pass := func(*tuple.Tuple) bool { return true }
	prev := n2
	for i := 0; i < 5; i++ {
		prev = g.AddNode(ops.NewSelect("σ", sch, pass), prev)
	}
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), n1, prev)
	count := 0
	g.AddNode(ops.NewSink("k", func(*tuple.Tuple, tuple.Time) { count++ }), u)

	clock := tuple.Time(0)
	e := MustNew(g, &ets.OnDemand{}, func() tuple.Time { return clock })
	clock = 500
	s1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(10000)
	if count != 1 {
		t.Fatalf("deep backtrack failed: delivered %d", count)
	}
	if s2.ETSEmitted() == 0 {
		t.Fatal("no ETS generated at the chain's source")
	}
}
