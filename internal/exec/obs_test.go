package exec

import (
	"strings"
	"testing"

	"repro/internal/ets"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// The sim engine's instruments must mirror its own counters: steps, ETS
// injections, queue peak, and the per-node execution shares.
func TestExecInstrumented(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	pol := &ets.OnDemand{}
	e := MustNew(f.g, pol, func() tuple.Time { return clock })
	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(16)
	e.InstrumentInto(reg)
	e.SetTracer(tr)

	clock = 100
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	if len(f.out) != 1 {
		t.Fatalf("out=%v", f.out)
	}

	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		vals[m.Name] = m.Value
	}
	if got := vals["sm_sim_steps_total"]; got != float64(e.Steps()) {
		t.Errorf("steps metric %v != engine %d", got, e.Steps())
	}
	if got := vals["sm_sim_ets_injected_total"]; got != float64(e.ETSInjected()) {
		t.Errorf("ets metric %v != engine %d", got, e.ETSInjected())
	}
	if e.ETSInjected() == 0 || tr.Count(metrics.EvETSGen) != e.ETSInjected() {
		t.Errorf("trace EvETSGen %d != injected %d", tr.Count(metrics.EvETSGen), e.ETSInjected())
	}
	if vals["sm_sim_queue_peak"] < 1 {
		t.Errorf("queue peak %v, want ≥ 1", vals["sm_sim_queue_peak"])
	}
	var perNode, sawBuffered float64
	for name, v := range vals {
		base, _ := metrics.SplitName(name)
		if base == "sm_sim_node_steps_total" {
			perNode += v
		}
		if base == "sm_sim_node_buffered" {
			sawBuffered++
		}
	}
	if perNode != float64(e.Steps()) {
		t.Errorf("per-node steps sum %v != %d", perNode, e.Steps())
	}
	if int(sawBuffered) != f.g.Len() {
		t.Errorf("buffered gauges = %v, want one per node (%d)", sawBuffered, f.g.Len())
	}
	spn := e.StepsPerNode()
	var sum uint64
	for _, c := range spn {
		sum += c
	}
	if sum != e.Steps() {
		t.Errorf("StepsPerNode sum %d != %d", sum, e.Steps())
	}
	if len(e.BlockedSet()) != 0 {
		t.Error("nothing should be idle-waiting after release")
	}
}

// DotAnnotated stamps the annotation into node labels; Dot stays unchanged.
func TestDotAnnotated(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	plain := f.g.Dot()
	if strings.Contains(plain, "steps=") {
		t.Fatal("plain dot already annotated")
	}
	annotated := f.g.DotAnnotated(func(n *graph.Node) string {
		return "steps=7"
	})
	if !strings.Contains(annotated, "steps=7") {
		t.Fatalf("annotation missing:\n%s", annotated)
	}
}
