package exec

import (
	"testing"

	"repro/internal/ets"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// fig4 assembles the paper's Figure-4 query (two sources → selections →
// union → sink) and returns the pieces the tests poke at.
type fig4 struct {
	g          *graph.Graph
	src1, src2 *ops.Source
	unionID    graph.NodeID
	sink       *ops.Sink
	out        []*tuple.Tuple
	outAt      []tuple.Time
}

func buildFig4(mode ops.IWPMode, ts tuple.TSKind) *fig4 {
	f := &fig4{}
	g := graph.New("fig4")
	sch1 := tuple.NewSchema("s1", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(ts)
	sch2 := tuple.NewSchema("s2", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(ts)
	f.src1 = ops.NewSource("src1", sch1, 0)
	f.src2 = ops.NewSource("src2", sch2, 0)
	s1 := g.AddNode(f.src1)
	s2 := g.AddNode(f.src2)
	pass := func(*tuple.Tuple) bool { return true }
	f1 := g.AddNode(ops.NewSelect("σ1", sch1, pass), s1)
	f2 := g.AddNode(ops.NewSelect("σ2", sch2, pass), s2)
	f.unionID = g.AddNode(ops.NewUnion("∪", nil, 2, mode), f1, f2)
	f.sink = ops.NewSink("sink", func(t *tuple.Tuple, now tuple.Time) {
		f.out = append(f.out, t)
		f.outAt = append(f.outAt, now)
	})
	g.AddNode(f.sink, f.unionID)
	f.g = g
	return f
}

func TestEngineRejectsInvalidGraph(t *testing.T) {
	g := graph.New("empty")
	if _, err := New(g, nil, func() tuple.Time { return 0 }); err == nil {
		t.Fatal("invalid graph accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic")
		}
	}()
	MustNew(g, nil, func() tuple.Time { return 0 })
}

func TestSimplePathDelivery(t *testing.T) {
	// A single-source path: source → select → sink, pure DFS forwarding.
	var got []int64
	g := graph.New("path")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	src := ops.NewSource("src", sch, 0)
	s := g.AddNode(src)
	f := g.AddNode(ops.NewSelect("σ", sch, func(t *tuple.Tuple) bool {
		return t.Vals[0].AsInt()%2 == 0
	}), s)
	g.AddNode(ops.NewSink("sink", func(t *tuple.Tuple, _ tuple.Time) {
		got = append(got, t.Vals[0].AsInt())
	}), f)

	clock := tuple.Time(0)
	e := MustNew(g, nil, func() tuple.Time { return clock })
	for i := 0; i < 6; i++ {
		src.Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
	}
	steps := e.Run(1000)
	if steps == 0 || e.Steps() != uint64(steps) {
		t.Fatalf("steps = %d", steps)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("delivered = %v", got)
	}
	if e.Step() {
		t.Fatal("engine must be quiescent after draining")
	}
}

func TestScenarioANoPolicyIdleWaits(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	e := MustNew(f.g, nil, func() tuple.Time { return clock })

	// A tuple arrives on stream 1 only.
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), 100)
	clock = 100
	e.Run(1000)
	if len(f.out) != 0 {
		t.Fatalf("tuple delivered without a bound on stream 2: %v", f.out)
	}
	// The union is idle-waiting with data.
	blocked := e.BlockedWithData()
	if len(blocked) != 1 || blocked[0] != f.unionID {
		t.Fatalf("BlockedWithData = %v, want [union]", blocked)
	}
	// Only a stream-2 arrival releases it.
	clock = 5000
	f.src2.Ingest(tuple.NewData(0, tuple.Int(2)), clock)
	e.Run(1000)
	// The stream-1 tuple waited 4900µs: delivered at clock 5000 with ts
	// 100. The stream-2 tuple (ts 5000) now idle-waits in turn — stream 1
	// drained with bound 100.
	if len(f.out) != 1 || f.out[0].Ts != 100 || f.outAt[0] != 5000 {
		t.Fatalf("deliveries ts=%v at=%v", f.out, f.outAt)
	}
	clock = 6000
	f.src1.Ingest(tuple.NewData(0, tuple.Int(3)), clock)
	e.Run(1000)
	if len(f.out) != 2 || f.out[1].Ts != 5000 || f.outAt[1] != 6000 {
		t.Fatalf("second delivery: %v at %v", f.out, f.outAt)
	}
}

func TestScenarioCOnDemandReleasesImmediately(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	pol := &ets.OnDemand{}
	e := MustNew(f.g, pol, func() tuple.Time { return clock })

	clock = 100
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	// Backtracking reached src2, generated ETS(100), which flowed down and
	// released the union: the tuple reaches the sink at the same clock.
	if len(f.out) != 1 || f.out[0].Ts != 100 || f.outAt[0] != 100 {
		t.Fatalf("out=%v at=%v", f.out, f.outAt)
	}
	if pol.Generated == 0 || e.ETSInjected() == 0 {
		t.Fatal("no ETS generated")
	}
	if len(e.BlockedWithData()) != 0 {
		t.Fatal("nothing should be idle-waiting")
	}
	// Quiescent now: the policy must not spin at the same clock.
	if e.Step() {
		t.Fatal("engine must be quiescent (ETS at same clock is useless)")
	}
	// Clock advances, new tuple: again immediate.
	clock = 200
	f.src1.Ingest(tuple.NewData(0, tuple.Int(2)), clock)
	e.Run(1000)
	if len(f.out) != 2 || f.outAt[1] != 200 {
		t.Fatalf("second delivery at %v", f.outAt)
	}
}

func TestScenarioDLatentNeverWaits(t *testing.T) {
	f := buildFig4(ops.LatentMode, tuple.Latent)
	clock := tuple.Time(0)
	e := MustNew(f.g, nil, func() tuple.Time { return clock })
	clock = 100
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	if len(f.out) != 1 {
		t.Fatalf("latent tuple not delivered: %v", f.out)
	}
	if f.out[0].Arrived != 100 {
		t.Errorf("Arrived = %v", f.out[0].Arrived)
	}
}

func TestPeriodicHeartbeatReleases(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	e := MustNew(f.g, nil, func() tuple.Time { return clock })
	clock = 100
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	if len(f.out) != 0 {
		t.Fatal("no heartbeat yet: must idle-wait")
	}
	// Heartbeat on stream 2 at clock 150 (as the periodic driver would).
	clock = 150
	if !f.src2.InjectETS(clock) {
		t.Fatal("InjectETS failed")
	}
	e.Run(1000)
	if len(f.out) != 1 || f.outAt[0] != 150 {
		t.Fatalf("delivery after heartbeat: %v at %v", f.out, f.outAt)
	}
	// The punctuation itself is stuck behind stream 1's bound (100) until
	// a heartbeat on stream 1 lets it pass; then the sink eliminates it.
	clock = 160
	if !f.src1.InjectETS(clock) {
		t.Fatal("InjectETS on stream 1 failed")
	}
	e.Run(1000)
	if f.sink.PunctEliminated() == 0 {
		t.Error("sink must eliminate punctuation")
	}
}

func TestBacktrackFirstPredAblation(t *testing.T) {
	// With backtracking pinned to input 0, the union blocked on input 1
	// sends its ETS demand to the wrong source, so the tuple stays stuck.
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	pol := &ets.OnDemand{}
	e := MustNew(f.g, pol, func() tuple.Time { return clock })
	e.BacktrackFirstPred = true
	clock = 100
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	if len(f.out) != 0 {
		t.Fatalf("misdirected backtracking should not release the tuple, got %v", f.out)
	}
	// The correct rule (§3.2) fixes it at the next opportunity.
	e.BacktrackFirstPred = false
	clock = 101
	e.Run(1000)
	if len(f.out) != 1 {
		t.Fatal("blocking-input backtracking failed to release")
	}
}

func TestRoundRobinStrategy(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	pol := &ets.OnDemand{}
	e := MustNew(f.g, pol, func() tuple.Time { return clock })
	e.Strategy = RoundRobin
	clock = 100
	f.src1.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	e.Run(1000)
	if len(f.out) != 1 {
		t.Fatalf("round-robin + probing should deliver, got %v", f.out)
	}
	if e.Step() {
		t.Fatal("round-robin engine must reach quiescence")
	}
}

func TestTwoComponentsBothServed(t *testing.T) {
	// Two disconnected paths; work on the second must be found even when
	// the engine's cursor sits on the first (Phase-2 scan = the scheduler
	// attending to other tasks).
	var got1, got2 int
	g := graph.New("two")
	schA := tuple.NewSchema("a", tuple.Field{Name: "v", Kind: tuple.IntKind})
	schB := tuple.NewSchema("b", tuple.Field{Name: "v", Kind: tuple.IntKind})
	srcA := ops.NewSource("srcA", schA, 0)
	srcB := ops.NewSource("srcB", schB, 0)
	a := g.AddNode(srcA)
	b := g.AddNode(srcB)
	g.AddNode(ops.NewSink("kA", func(*tuple.Tuple, tuple.Time) { got1++ }), a)
	g.AddNode(ops.NewSink("kB", func(*tuple.Tuple, tuple.Time) { got2++ }), b)
	clock := tuple.Time(0)
	e := MustNew(g, nil, func() tuple.Time { return clock })
	srcB.Ingest(tuple.NewData(0, tuple.Int(1)), 0)
	e.Run(100)
	if got2 != 1 {
		t.Fatalf("second component starved: %d/%d", got1, got2)
	}
	srcA.Ingest(tuple.NewData(0, tuple.Int(1)), 0)
	e.Run(100)
	if got1 != 1 {
		t.Fatalf("first component starved: %d/%d", got1, got2)
	}
}

func TestQueuesPeakObserved(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	e := MustNew(f.g, nil, func() tuple.Time { return clock })
	for i := 0; i < 10; i++ {
		f.src1.Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
	}
	if e.Queues().Total() != 10 {
		t.Fatalf("inbox occupancy = %d", e.Queues().Total())
	}
	e.Run(1000)
	// Without a bound on stream 2 the tuples pile up at the union.
	if e.Queues().Peak() < 10 {
		t.Errorf("peak = %d, want ≥ 10", e.Queues().Peak())
	}
	if len(e.BlockedWithData()) == 0 {
		t.Error("union should be idle-waiting")
	}
}

func TestStrategyString(t *testing.T) {
	if DFS.String() != "dfs" || RoundRobin.String() != "round-robin" {
		t.Error("Strategy.String wrong")
	}
	if (ets.None{}).Name() != "none" || (&ets.OnDemand{}).Name() != "on-demand" {
		t.Error("policy names wrong")
	}
}

func TestNonePolicy(t *testing.T) {
	src := ops.NewSource("s", tuple.NewSchema("s"), 0)
	if (ets.None{}).OnBacktrack(src, 100) {
		t.Fatal("None must never inject")
	}
	// OnDemand declines when the inbox already has data.
	pol := &ets.OnDemand{}
	src.Ingest(tuple.NewData(0), 50)
	if pol.OnBacktrack(src, 100) {
		t.Fatal("OnDemand must decline with a non-empty inbox")
	}
}
