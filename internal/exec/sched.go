package exec

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// NodeStat is one node's execution statistics.
type NodeStat struct {
	ID    graph.NodeID
	Name  string
	Comp  int // scheduling unit (weakly-connected component)
	Steps uint64
	// Buffered is the node's current total input occupancy.
	Buffered int
}

// NodeStats returns per-node execution statistics, in node order. streamd's
// -stats flag and tests use it to see where work happened.
func (e *Engine) NodeStats() []NodeStat {
	out := make([]NodeStat, 0, e.g.Len())
	for _, n := range e.g.Nodes() {
		buffered := 0
		for _, q := range n.In {
			buffered += q.Len()
		}
		if s := n.Source(); s != nil {
			buffered += s.Inbox().Len()
		}
		out = append(out, NodeStat{
			ID:       n.ID,
			Name:     n.Op.Name(),
			Comp:     e.nodeComp[n.ID],
			Steps:    e.stepsPerNode[n.ID],
			Buffered: buffered,
		})
	}
	return out
}

// Components reports the engine's scheduling units (weakly-connected
// components of the query graph), as node-id groups.
func (e *Engine) Components() [][]graph.NodeID { return e.comps }

// Scheduler apportions an engine's execution steps across its scheduling
// units — the paper's "each DAG represents a scheduling unit that is
// assigned a share of the system resources by the DSMS scheduler" (§3) —
// using deficit round robin: each unit accumulates credit proportional to
// its weight and spends one credit per executed step. Units without work
// are skipped without spending, so capacity flows to busy queries while
// long-run shares track the weights.
//
// The Scheduler replaces direct Engine.Step calls:
//
//	s := exec.NewScheduler(engine, weights)   // weights[i] for component i
//	for s.Step() { ... }
type Scheduler struct {
	e       *Engine
	weights []float64
	credit  []float64
	cursors []graph.NodeID
	next    int

	stepsPerUnit []uint64
}

// NewScheduler builds a scheduler over the engine. weights maps component
// index → relative share; missing components default to weight 1. A nil map
// gives uniform shares.
func NewScheduler(e *Engine, weights map[int]int) (*Scheduler, error) {
	n := len(e.comps)
	if n == 0 {
		return nil, fmt.Errorf("exec: scheduler over an empty graph")
	}
	s := &Scheduler{
		e:            e,
		weights:      make([]float64, n),
		credit:       make([]float64, n),
		cursors:      make([]graph.NodeID, n),
		stepsPerUnit: make([]uint64, n),
	}
	for c := range s.weights {
		s.weights[c] = 1
		s.cursors[c] = e.comps[c][0]
		// Prefer starting at a source, like the engine does.
		for _, id := range e.comps[c] {
			if e.g.Node(id).IsSource() {
				s.cursors[c] = id
				break
			}
		}
	}
	for c, w := range weights {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("exec: weight for unknown component %d (have %d)", c, n)
		}
		if w <= 0 {
			return nil, fmt.Errorf("exec: component %d weight must be positive", c)
		}
		s.weights[c] = float64(w)
	}
	return s, nil
}

// UnitSteps reports how many steps each scheduling unit has executed.
func (s *Scheduler) UnitSteps() []uint64 {
	return append([]uint64(nil), s.stepsPerUnit...)
}

// Step executes one operator step in the unit chosen by deficit round
// robin. It returns false when every unit is quiescent.
func (s *Scheduler) Step() bool {
	n := len(s.weights)
	for attempts := 0; attempts < 2*n; attempts++ {
		c := s.pick()
		if c < 0 {
			s.refill()
			continue
		}
		s.e.activeComp = c
		s.e.cur = s.cursors[c]
		ok := s.e.Step()
		s.cursors[c] = s.e.cur
		s.e.activeComp = -1
		if ok {
			s.credit[c]--
			s.stepsPerUnit[c]++
			s.next = (c + 1) % n
			return true
		}
		// Unit quiescent: exhaust its credit so pick moves on, but
		// remember we owe it nothing (it had nothing to run).
		s.credit[c] = 0
	}
	return false
}

// pick returns the next unit (after s.next, round-robin) holding credit, or
// -1 when all credit is spent.
func (s *Scheduler) pick() int {
	n := len(s.weights)
	for k := 0; k < n; k++ {
		c := (s.next + k) % n
		if s.credit[c] > 0 {
			return c
		}
	}
	return -1
}

func (s *Scheduler) refill() {
	for c := range s.credit {
		s.credit[c] += s.weights[c]
	}
}

// Run drives Step until quiescence or maxSteps.
func (s *Scheduler) Run(maxSteps int) int {
	steps := 0
	for steps < maxSteps && s.Step() {
		steps++
	}
	return steps
}

// String summarizes the schedule state.
func (s *Scheduler) String() string {
	type cw struct {
		c int
		w float64
	}
	var cws []cw
	for c, w := range s.weights {
		cws = append(cws, cw{c, w})
	}
	sort.Slice(cws, func(i, j int) bool { return cws[i].c < cws[j].c })
	out := "sched["
	for i, x := range cws {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("u%d:w%g:%d", x.c, x.w, s.stepsPerUnit[x.c])
	}
	return out + "]"
}
