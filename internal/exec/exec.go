// Package exec implements the paper's query-graph execution model (§3):
// the two-step cycle of Figure 3 — execute the current operator, then select
// the next operator — with the depth-first Next-Operator-Selection rules
//
//	Forward:   if yield then next := succ
//	Encore:    else if more then next := self
//	Backtrack: else next := pred_j (the predecessor feeding the blocking
//	           input) and repeat on pred_j
//
// and the paper's key extension (§4): when backtracking reaches a source
// node whose input buffer is empty, the engine consults a SourcePolicy. The
// on-demand policy generates an Enabling Time-Stamp punctuation right there,
// which flows down the path that was just backtracked and reactivates the
// idle-waiting operator.
package exec

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// SourcePolicy decides what happens when DFS backtracking reaches a source
// node whose inbox is empty (§3: wait, return control to the scheduler, or
// generate an ETS). OnBacktrack reports whether it deposited anything into
// the source's inbox.
type SourcePolicy interface {
	Name() string
	OnBacktrack(src *ops.Source, now tuple.Time) bool
}

// Strategy selects the scheduling discipline.
type Strategy uint8

const (
	// DFS is the paper's depth-first strategy: tuples are pushed toward
	// the sink as soon as they are produced, and blocked paths backtrack.
	DFS Strategy = iota
	// RoundRobin cycles over the operators executing any that can run —
	// the baseline discipline for the scheduling ablation. Backtracking
	// (and therefore *targeted* ETS generation) does not exist here; when
	// nothing is runnable, the engine probes every source.
	RoundRobin
	// GreedyQueue always executes the runnable operator with the largest
	// total input occupancy — a memory-oriented discipline in the spirit
	// of Chain scheduling (Babcock et al., SIGMOD'03), which the paper's
	// related work contrasts with timestamp-integrated execution. Like
	// RoundRobin it has no backtracking, so ETS probing is indiscriminate.
	GreedyQueue
)

func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case GreedyQueue:
		return "greedy-queue"
	default:
		return "dfs"
	}
}

// Engine executes one query graph. It is single-threaded; the caller (a
// simulation driver or a wrapper loop) owns the clock and calls Step.
type Engine struct {
	g      *graph.Graph
	policy SourcePolicy
	now    func() tuple.Time

	// Strategy selects the scheduling discipline (default DFS).
	Strategy Strategy
	// BacktrackFirstPred disables blocking-input selection: Backtrack
	// always follows input 0 (ablation AB1). With it set, on-demand ETS
	// often probes the wrong source and idle-waiting persists.
	BacktrackFirstPred bool

	ctxs   []*ops.Ctx
	cur    graph.NodeID
	queues *buffer.Group
	rr     int

	// component bookkeeping for the scheduler (sched.go): nodeComp maps a
	// node to its weakly-connected component; activeComp, when ≥ 0,
	// restricts Step to that component (the scheduling unit).
	nodeComp   []int
	comps      [][]graph.NodeID
	activeComp int

	steps        uint64
	stepsPerNode []uint64
	etsInjected  uint64

	// live observability hooks (obs.go); nil until InstrumentInto/SetTracer.
	obs   *execObs
	trace *metrics.Tracer
}

// New builds an engine over a validated graph. policy may be nil (never
// generate ETS on backtrack — the paper's scenario A). now supplies the
// virtual clock.
func New(g *graph.Graph, policy SourcePolicy, now func() tuple.Time) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{g: g, policy: policy, now: now, queues: g.QueueGroup(), activeComp: -1}
	e.comps = g.Components()
	e.nodeComp = make([]int, g.Len())
	for c, ids := range e.comps {
		for _, id := range ids {
			e.nodeComp[id] = c
		}
	}
	e.stepsPerNode = make([]uint64, g.Len())
	e.ctxs = make([]*ops.Ctx, g.Len())
	for _, n := range g.Nodes() {
		n := n
		e.ctxs[n.ID] = &ops.Ctx{
			Ins: n.In,
			Emit: func(t *tuple.Tuple) {
				for _, a := range n.Out {
					a.Buf.Push(t)
				}
			},
			EmitTo: func(i int, t *tuple.Tuple) {
				n.Out[i].Buf.Push(t)
			},
			Now: now,
		}
	}
	// Start at the first source: nothing can be runnable before an
	// arrival, and the first arrival lands in a source inbox.
	if srcs := g.Sources(); len(srcs) > 0 {
		e.cur = srcs[0]
	}
	return e, nil
}

// MustNew is New panicking on error, for tests and fixed harnesses.
func MustNew(g *graph.Graph, policy SourcePolicy, now func() tuple.Time) *Engine {
	e, err := New(g, policy, now)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	return e
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Queues returns the group observing every buffer (arcs + source inboxes);
// its peak is the Figure-8 memory metric.
func (e *Engine) Queues() *buffer.Group { return e.queues }

// Steps reports the number of operator executions performed.
func (e *Engine) Steps() uint64 { return e.steps }

// ETSInjected reports how many times the source policy deposited an ETS
// during backtracking.
func (e *Engine) ETSInjected() uint64 { return e.etsInjected }

// Step performs one execution of the two-step cycle: it locates a runnable
// operator (following the strategy's discipline, generating on-demand ETS
// at sources where the policy allows), executes it once, and applies the
// NOS rules to position the engine for the next step. It returns false when
// the whole graph is quiescent — no operator can run and no source policy
// can produce anything new; the caller should then advance the clock.
func (e *Engine) Step() bool {
	switch e.Strategy {
	case RoundRobin:
		return e.stepRoundRobin()
	case GreedyQueue:
		return e.stepGreedy()
	default:
		return e.stepDFS()
	}
}

// stepGreedy executes the runnable node with the largest input backlog.
func (e *Engine) stepGreedy() bool {
	var best *graph.Node
	bestLen := -1
	for _, n := range e.g.Nodes() {
		if e.skip(n.ID) || !n.Op.More(e.ctxs[n.ID]) {
			continue
		}
		total := 0
		for _, q := range n.In {
			total += q.Len()
		}
		if s := n.Source(); s != nil {
			total += s.Inbox().Len()
		}
		if total > bestLen {
			best, bestLen = n, total
		}
	}
	if best != nil {
		e.cur = best.ID
		best.Op.Exec(e.ctxs[best.ID])
		e.steps++
		e.stepsPerNode[best.ID]++
		e.queues.Observe()
		e.account(int(best.ID))
		return true
	}
	// Nothing runnable: probe every source (no backtracking exists).
	if e.policy == nil {
		return false
	}
	injected := false
	for _, id := range e.g.Sources() {
		if e.skip(id) {
			continue
		}
		n := e.g.Node(id)
		if n.Source().Inbox().Empty() && e.policy.OnBacktrack(n.Source(), e.now()) {
			e.noteETS(n.Source())
			injected = true
		}
	}
	if !injected {
		return false
	}
	return e.stepGreedy()
}

// skip reports whether node id lies outside the active scheduling unit.
func (e *Engine) skip(id graph.NodeID) bool {
	return e.activeComp >= 0 && e.nodeComp[id] != e.activeComp
}

func (e *Engine) stepDFS() bool {
	// Phase 1: continue from the current operator, walking the blocking
	// chain upstream (the Backtrack rule).
	if !e.skip(e.cur) && e.tryPath(e.cur) {
		return true
	}
	// Phase 2: the current path is dead; emulate returning control to the
	// scheduler, which attends to other paths (§3). Any runnable node
	// elsewhere is executed.
	for _, n := range e.g.Nodes() {
		if n.ID == e.cur || e.skip(n.ID) {
			continue
		}
		if n.Op.More(e.ctxs[n.ID]) {
			e.cur = n.ID
			e.execute(n)
			return true
		}
	}
	// Phase 3: no operator is runnable; backtrack from every other
	// idle-waiting operator so each blocked path gets its chance to
	// request an ETS.
	for _, n := range e.g.Nodes() {
		if n.ID == e.cur || n.IsSource() || e.skip(n.ID) {
			continue
		}
		if e.hasInputData(n) && e.tryPath(n.ID) {
			return true
		}
	}
	return false
}

// tryPath walks from id up the blocking chain. If it finds a runnable
// operator it executes one step there and returns true. If it dead-ends at
// a source with an empty inbox, it consults the policy — but only when some
// operator along the chain is actually idle-waiting (blocked while holding
// input tuples): ETS exists to *reactivate idle-waiting operators* (§4), and
// generating it when nothing is waiting would just burn cycles and flood the
// graph with useless punctuation.
func (e *Engine) tryPath(id graph.NodeID) bool {
	demand := false
	for {
		n := e.g.Node(id)
		ctx := e.ctxs[id]
		if n.Op.More(ctx) {
			e.cur = id
			e.execute(n)
			return true
		}
		if !n.IsSource() && e.hasInputData(n) {
			demand = true
		}
		if src := n.Source(); src != nil {
			if !demand || e.policy == nil || !e.policy.OnBacktrack(src, e.now()) {
				return false
			}
			e.noteETS(src)
			if !n.Op.More(ctx) {
				return false
			}
			e.cur = id
			e.execute(n)
			return true
		}
		j := n.Op.BlockingInput(ctx)
		if j < 0 || e.BacktrackFirstPred {
			j = 0
		}
		id = n.Preds[j]
	}
}

// execute runs one execution step at node n and applies the continuation
// rules: Forward on yield, Encore while more (cur stays), otherwise leave
// cur in place so the next Step backtracks from here.
func (e *Engine) execute(n *graph.Node) {
	ctx := e.ctxs[n.ID]
	yield := n.Op.Exec(ctx)
	e.steps++
	e.stepsPerNode[n.ID]++
	e.queues.Observe()
	e.account(int(n.ID))
	if yield && len(n.Out) > 0 {
		e.cur = n.Out[0].To // Forward
	}
	// Encore/Backtrack are implicit: cur stays at n and the next Step
	// either finds More true (Encore) or walks upstream (Backtrack).
}

func (e *Engine) stepRoundRobin() bool {
	nodes := e.g.Nodes()
	for k := 0; k < len(nodes); k++ {
		n := nodes[(e.rr+k)%len(nodes)]
		if e.skip(n.ID) {
			continue
		}
		if n.Op.More(e.ctxs[n.ID]) {
			e.rr = (int(n.ID) + 1) % len(nodes)
			e.cur = n.ID
			n.Op.Exec(e.ctxs[n.ID])
			e.steps++
			e.stepsPerNode[n.ID]++
			e.queues.Observe()
			e.account(int(n.ID))
			return true
		}
	}
	// Nothing runnable: probe every source (round-robin has no notion of
	// a blocking path, so ETS generation is indiscriminate).
	if e.policy == nil {
		return false
	}
	injected := false
	for _, id := range e.g.Sources() {
		if e.skip(id) {
			continue
		}
		n := e.g.Node(id)
		if n.Source().Inbox().Empty() && e.policy.OnBacktrack(n.Source(), e.now()) {
			e.noteETS(n.Source())
			injected = true
		}
	}
	if !injected {
		return false
	}
	return e.stepRoundRobin()
}

// hasInputData reports whether any input buffer of n holds a *data* tuple.
// Buffered punctuation does not count: an operator that cannot yet consume a
// punctuation tuple is not delaying any result, so it creates no ETS demand
// (treating it as demand makes two sources feed each other punctuation
// forever).
func (e *Engine) hasInputData(n *graph.Node) bool {
	for _, q := range n.In {
		if q.DataLen() > 0 {
			return true
		}
	}
	return false
}

// BlockedWithData returns the nodes that are currently idle-waiting in the
// paper's sense: they hold at least one input *data* tuple but their `more`
// condition is false. The simulation driver charges idle time to these
// nodes while the clock advances across a quiescent period.
func (e *Engine) BlockedWithData() []graph.NodeID {
	var out []graph.NodeID
	for _, n := range e.g.Nodes() {
		if n.IsSource() {
			continue
		}
		if e.hasInputData(n) && !n.Op.More(e.ctxs[n.ID]) {
			out = append(out, n.ID)
		}
	}
	return out
}

// Run drives Step until quiescence or maxSteps, returning the number of
// steps executed. Tests and cost-free callers use it; the simulator calls
// Step directly to charge time.
func (e *Engine) Run(maxSteps int) int {
	steps := 0
	for steps < maxSteps && e.Step() {
		steps++
	}
	return steps
}
