package exec

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// buildTwoUnits makes a graph with two independent pipelines (two
// scheduling units), each source → select → sink.
func buildTwoUnits(t *testing.T) (*graph.Graph, [2]*ops.Source, [2]*int) {
	t.Helper()
	g := graph.New("units")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	var srcs [2]*ops.Source
	var counts [2]*int
	for i := 0; i < 2; i++ {
		src := ops.NewSource("src", sch, 0)
		n := g.AddNode(src)
		f := g.AddNode(ops.NewSelect("σ", sch, func(*tuple.Tuple) bool { return true }), n)
		c := new(int)
		g.AddNode(ops.NewSink("k", func(*tuple.Tuple, tuple.Time) { *c++ }), f)
		srcs[i] = src
		counts[i] = c
	}
	return g, srcs, counts
}

func TestSchedulerValidation(t *testing.T) {
	g, _, _ := buildTwoUnits(t)
	clock := tuple.Time(0)
	e := MustNew(g, nil, func() tuple.Time { return clock })
	if len(e.Components()) != 2 {
		t.Fatalf("components = %d", len(e.Components()))
	}
	if _, err := NewScheduler(e, map[int]int{5: 1}); err == nil {
		t.Error("unknown component weight accepted")
	}
	if _, err := NewScheduler(e, map[int]int{0: 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewScheduler(e, nil); err != nil {
		t.Errorf("uniform scheduler rejected: %v", err)
	}
}

func TestSchedulerWeightedShares(t *testing.T) {
	g, srcs, counts := buildTwoUnits(t)
	clock := tuple.Time(0)
	e := MustNew(g, nil, func() tuple.Time { return clock })
	s, err := NewScheduler(e, map[int]int{0: 3, 1: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate both units.
	const n = 600
	for i := 0; i < n; i++ {
		srcs[0].Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
		srcs[1].Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
	}
	// Run only part of the total work so shares are visible mid-flight.
	s.Run(800)
	us := s.UnitSteps()
	ratio := float64(us[0]) / float64(us[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("unit step ratio = %.2f (steps %v), want ≈ 3", ratio, us)
	}
	// Both units progressed; neither starved.
	if *counts[0] == 0 || *counts[1] == 0 {
		t.Fatalf("deliveries = %d/%d", *counts[0], *counts[1])
	}
	// Finish everything: total work completes regardless of weights.
	s.Run(1 << 20)
	if *counts[0] != n || *counts[1] != n {
		t.Fatalf("final deliveries = %d/%d, want %d each", *counts[0], *counts[1], n)
	}
	if s.Step() {
		t.Fatal("scheduler must be quiescent after draining")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSchedulerIdleUnitYieldsCapacity(t *testing.T) {
	g, srcs, counts := buildTwoUnits(t)
	clock := tuple.Time(0)
	e := MustNew(g, nil, func() tuple.Time { return clock })
	s, err := NewScheduler(e, map[int]int{0: 1, 1: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Only unit 0 has work: despite its tiny weight it must get all steps.
	for i := 0; i < 50; i++ {
		srcs[0].Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
	}
	s.Run(1 << 20)
	if *counts[0] != 50 {
		t.Fatalf("starved despite idle competitor: %d/50", *counts[0])
	}
	if *counts[1] != 0 {
		t.Fatalf("unit 1 delivered %d from nothing", *counts[1])
	}
}

func TestNodeStats(t *testing.T) {
	g, srcs, _ := buildTwoUnits(t)
	clock := tuple.Time(0)
	e := MustNew(g, nil, func() tuple.Time { return clock })
	srcs[0].Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	stats := e.NodeStats()
	if len(stats) != 6 {
		t.Fatalf("stats = %d nodes", len(stats))
	}
	// Inbox occupancy is visible before execution.
	if stats[0].Buffered != 1 {
		t.Errorf("source buffered = %d", stats[0].Buffered)
	}
	e.Run(100)
	stats = e.NodeStats()
	total := uint64(0)
	for _, st := range stats {
		total += st.Steps
	}
	if total != e.Steps() {
		t.Errorf("per-node steps (%d) != engine steps (%d)", total, e.Steps())
	}
	if stats[0].Comp == stats[3].Comp {
		t.Error("independent pipelines share a component")
	}
}
