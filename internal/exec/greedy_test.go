package exec

import (
	"testing"

	"repro/internal/ets"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

func TestGreedyStrategyDeliversAndDrainsBacklog(t *testing.T) {
	f := buildFig4(ops.TSM, tuple.Internal)
	clock := tuple.Time(0)
	pol := &ets.OnDemand{}
	e := MustNew(f.g, pol, func() tuple.Time { return clock })
	e.Strategy = GreedyQueue

	clock = 100
	for i := 0; i < 20; i++ {
		f.src1.Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
	}
	e.Run(10000)
	if len(f.out) != 20 {
		t.Fatalf("greedy delivered %d of 20", len(f.out))
	}
	if e.Step() {
		t.Fatal("greedy engine must reach quiescence")
	}
	// With no policy, quiescence without injection.
	e2 := MustNew(buildFig4(ops.TSM, tuple.Internal).g, nil, func() tuple.Time { return clock })
	e2.Strategy = GreedyQueue
	if e2.Step() {
		t.Fatal("empty greedy engine must be quiescent")
	}
}

func TestGreedyPrefersLargestBacklog(t *testing.T) {
	// Two independent pipelines; the one with the bigger inbox runs first.
	g := graph.New("two")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	srcA := ops.NewSource("a", sch, 0)
	srcB := ops.NewSource("b", sch, 0)
	na := g.AddNode(srcA)
	nb := g.AddNode(srcB)
	delivered := 0
	g.AddNode(ops.NewSink("ka", func(*tuple.Tuple, tuple.Time) { delivered++ }), na)
	g.AddNode(ops.NewSink("kb", func(*tuple.Tuple, tuple.Time) { delivered++ }), nb)

	clock := tuple.Time(0)
	e := MustNew(g, nil, func() tuple.Time { return clock })
	e.Strategy = GreedyQueue
	srcA.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	srcB.Ingest(tuple.NewData(0, tuple.Int(1)), clock)
	srcB.Ingest(tuple.NewData(0, tuple.Int(2)), clock)
	// B's inbox (2 tuples) beats A's (1): B's source must run first.
	if !e.Step() {
		t.Fatal("no step")
	}
	if srcB.Emitted() != 1 || srcA.Emitted() != 0 {
		t.Fatalf("greedy ran wrong node first: A=%d B=%d", srcA.Emitted(), srcB.Emitted())
	}
	e.Run(100)
	if delivered != 3 {
		t.Fatalf("delivered %d of 3", delivered)
	}
	if GreedyQueue.String() != "greedy-queue" {
		t.Error("Strategy string")
	}
}
