// Observability for the simulated (single-threaded) engine. The exec engine
// is driver-clocked, so instruments are plain registry atomics updated from
// the one scheduling thread; GaugeFunc collectors read buffers directly,
// which is safe because nothing mutates the graph while a driver is between
// Step calls (the only time a sim scrape makes sense).
package exec

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/ops"
)

// execObs holds the engine-level and per-node instruments created by
// InstrumentInto. nodeSteps is indexed by graph.NodeID.
type execObs struct {
	steps      *metrics.Counter64
	ets        *metrics.Counter64
	queueTotal *metrics.Gauge64
	queuePeak  *metrics.Gauge64
	nodeSteps  []*metrics.Counter64
}

// InstrumentInto registers the engine's instruments in reg under sm_sim_*
// names and keeps them updated from the scheduling loop. Call once, before
// the first Step.
func (e *Engine) InstrumentInto(reg *metrics.Registry) {
	o := &execObs{
		steps:      reg.Counter("sm_sim_steps_total"),
		ets:        reg.Counter("sm_sim_ets_injected_total"),
		queueTotal: reg.Gauge("sm_sim_queue_total"),
		queuePeak:  reg.Gauge("sm_sim_queue_peak"),
		nodeSteps:  make([]*metrics.Counter64, e.g.Len()),
	}
	for _, n := range e.g.Nodes() {
		n := n
		lbl := fmt.Sprintf("{node=%q,id=%q}", n.Op.Name(), fmt.Sprint(n.ID))
		o.nodeSteps[n.ID] = reg.Counter("sm_sim_node_steps_total" + lbl)
		reg.GaugeFunc("sm_sim_node_buffered"+lbl, func() int64 {
			total := 0
			for _, q := range n.In {
				total += q.Len()
			}
			if s := n.Source(); s != nil {
				total += s.Inbox().Len()
			}
			return int64(total)
		})
	}
	e.obs = o
}

// SetTracer attaches tr to the engine; ETS injections emit EvETSGen events.
// A nil tracer (the default) costs one pointer check per injection.
func (e *Engine) SetTracer(tr *metrics.Tracer) { e.trace = tr }

// account books one operator execution at node id and refreshes the queue
// occupancy gauges. No-op until InstrumentInto is called.
func (e *Engine) account(id int) {
	o := e.obs
	if o == nil {
		return
	}
	o.steps.Inc()
	o.nodeSteps[id].Inc()
	o.queueTotal.Set(int64(e.queues.Total()))
	o.queuePeak.Set(int64(e.queues.Peak()))
}

// noteETS books one on-demand ETS injection at src and traces it.
func (e *Engine) noteETS(src *ops.Source) {
	e.etsInjected++
	if e.obs != nil {
		e.obs.ets.Inc()
	}
	if e.trace != nil {
		e.trace.Emit(metrics.EvETSGen, src.Name(), e.now(), int64(src.TSKind()))
	}
}

// StepsPerNode returns a copy of the per-node execution counts, indexed by
// graph node id — the scheduling-share diagnostic the dot overlay renders.
func (e *Engine) StepsPerNode() []uint64 {
	out := make([]uint64, len(e.stepsPerNode))
	copy(out, e.stepsPerNode)
	return out
}

// BlockedSet returns the current idle-waiting nodes as a set keyed by node
// id, for annotation overlays.
func (e *Engine) BlockedSet() map[int]bool {
	out := make(map[int]bool)
	for _, id := range e.BlockedWithData() {
		out[int(id)] = true
	}
	return out
}
