package graph

import (
	"testing"

	"repro/internal/ops"
	"repro/internal/tuple"
)

func TestRewriterKeepPreservesShape(t *testing.T) {
	g := New("g")
	s := g.AddNode(ops.NewSource("s", tuple.NewSchema("s"), 0))
	sel := g.AddNode(ops.NewSelect("σ", nil, func(*tuple.Tuple) bool { return true }), s)
	g.AddNode(ops.NewSink("k", func(*tuple.Tuple, tuple.Time) {}), sel)

	r := NewRewriter(g, "g2")
	for _, id := range g.TopoOrder() {
		r.Keep(id)
	}
	g2 := r.Graph()
	if g2.Name() != "g2" || g2.Len() != g.Len() {
		t.Fatalf("copy: name=%q len=%d", g2.Name(), g2.Len())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len(); i++ {
		if g2.Node(NodeID(i)).Op != g.Node(NodeID(i)).Op {
			t.Errorf("node %d: operator not shared", i)
		}
	}
}

func TestRewriterSetMapRedirectsConsumers(t *testing.T) {
	g := New("g")
	s := g.AddNode(ops.NewSource("s", tuple.NewSchema("s"), 0))
	sel := g.AddNode(ops.NewSelect("σ", nil, func(*tuple.Tuple) bool { return true }), s)
	g.AddNode(ops.NewSink("k", func(*tuple.Tuple, tuple.Time) {}), sel)

	// Replace the select with a two-node chain; the sink must attach to the
	// replacement's tail.
	r := NewRewriter(g, "g2")
	r.Keep(s)
	m1 := r.Add(ops.NewSelect("σa", nil, func(*tuple.Tuple) bool { return true }), r.Map(s))
	m2 := r.Add(ops.NewSelect("σb", nil, func(*tuple.Tuple) bool { return true }), m1)
	r.SetMap(sel, m2)
	r.Keep(NodeID(2)) // the sink
	g2 := r.Graph()
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	sink := g2.Node(NodeID(3))
	if sink.Op.Name() != "k" || sink.Preds[0] != m2 {
		t.Fatalf("sink wired to %v, want %v", sink.Preds, m2)
	}
}

func TestRewriterOutOfOrderPanics(t *testing.T) {
	g := New("g")
	s := g.AddNode(ops.NewSource("s", tuple.NewSchema("s"), 0))
	sel := g.AddNode(ops.NewSelect("σ", nil, func(*tuple.Tuple) bool { return true }), s)
	_ = sel
	r := NewRewriter(g, "g2")
	defer func() {
		if recover() == nil {
			t.Fatal("Keep of a node with unmapped predecessor must panic")
		}
	}()
	r.Keep(sel)
}
