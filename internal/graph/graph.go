// Package graph models continuous queries as operator graphs, the structure
// the paper's execution model is defined over (§3): nodes are query
// operators (plus source and sink nodes), and each directed arc is a buffer
// — the producer appends at the tail, the consumer removes from the front.
//
// A Graph is assembled with AddNode, validated with Validate, and executed
// by internal/exec. Graphs are DAGs; each weakly-connected component is an
// independent scheduling unit.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/buffer"
	"repro/internal/ops"
)

// NodeID identifies a node within its Graph.
type NodeID int

// None marks the absence of a node (e.g. the predecessor of a source).
const None NodeID = -1

// Arc connects a producer node to one input port of a consumer node. The
// Buf is the paper's buffer: the producer pushes, the consumer pops.
type Arc struct {
	From NodeID
	To   NodeID
	Port int // input port of To
	Buf  *buffer.Queue
}

// Node is one operator in the graph together with its wiring.
type Node struct {
	ID NodeID
	Op ops.Operator

	// In holds the node's input buffers, one per port (aliases of the
	// corresponding Arc.Buf).
	In []*buffer.Queue
	// Preds holds the producer node of each input port.
	Preds []NodeID
	// Out holds the arcs leaving this node (fan-out allowed).
	Out []*Arc
}

// IsSource reports whether the node is a source node.
func (n *Node) IsSource() bool {
	_, ok := n.Op.(*ops.Source)
	return ok
}

// Source returns the node's operator as a *ops.Source, or nil.
func (n *Node) Source() *ops.Source {
	s, _ := n.Op.(*ops.Source)
	return s
}

// IsSink reports whether the node has no outgoing arcs.
func (n *Node) IsSink() bool { return len(n.Out) == 0 }

// Graph is a continuous-query operator graph.
type Graph struct {
	name  string
	nodes []*Node
	arcs  []*Arc
}

// New returns an empty graph.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// AddNode adds op as a node fed by the given predecessors, in input-port
// order, and returns its id. Source operators take no predecessors. A fresh
// buffer is created for each (pred, port) arc.
func (g *Graph) AddNode(op ops.Operator, preds ...NodeID) NodeID {
	if len(preds) != op.NumInputs() {
		panic(fmt.Sprintf("graph %s: node %s has %d inputs, got %d predecessors",
			g.name, op.Name(), op.NumInputs(), len(preds)))
	}
	id := NodeID(len(g.nodes))
	n := &Node{ID: id, Op: op}
	for port, p := range preds {
		if p < 0 || int(p) >= len(g.nodes) {
			panic(fmt.Sprintf("graph %s: node %s references unknown predecessor %d",
				g.name, op.Name(), p))
		}
		arc := &Arc{
			From: p,
			To:   id,
			Port: port,
			Buf:  buffer.New(fmt.Sprintf("%s->%s[%d]", g.nodes[p].Op.Name(), op.Name(), port)),
		}
		g.arcs = append(g.arcs, arc)
		g.nodes[p].Out = append(g.nodes[p].Out, arc)
		n.In = append(n.In, arc.Buf)
		n.Preds = append(n.Preds, p)
	}
	g.nodes = append(g.nodes, n)
	return id
}

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Len reports the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Arcs returns all arcs.
func (g *Graph) Arcs() []*Arc { return g.arcs }

// Sources returns the ids of all source nodes.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.IsSource() {
			out = append(out, n.ID)
		}
	}
	return out
}

// Sinks returns the ids of all nodes without outgoing arcs.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.IsSink() {
			out = append(out, n.ID)
		}
	}
	return out
}

// QueueGroup returns a buffer group over every arc, used to track peak total
// queue size (the Figure-8 metric). Source inboxes are included: tuples
// waiting to enter the system occupy memory too.
func (g *Graph) QueueGroup() *buffer.Group {
	grp := buffer.NewGroup()
	for _, a := range g.arcs {
		grp.Add(a.Buf)
	}
	for _, n := range g.nodes {
		if s := n.Source(); s != nil {
			grp.Add(s.Inbox())
		}
	}
	return grp
}

// Validate checks structural well-formedness: at least one node, acyclicity,
// sources present, and every non-source node reachable from a source.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("graph %s: empty", g.name)
	}
	if len(g.Sources()) == 0 {
		return fmt.Errorf("graph %s: no source nodes", g.name)
	}
	for _, n := range g.nodes {
		if n.IsSource() && len(n.Preds) != 0 {
			return fmt.Errorf("graph %s: source %s has predecessors", g.name, n.Op.Name())
		}
	}
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	// Reachability from sources.
	reached := make([]bool, len(g.nodes))
	var stack []NodeID
	for _, s := range g.Sources() {
		reached[s] = true
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.nodes[id].Out {
			if !reached[a.To] {
				reached[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	for i, r := range reached {
		if !r {
			return fmt.Errorf("graph %s: node %s unreachable from any source",
				g.name, g.nodes[i].Op.Name())
		}
	}
	return nil
}

func (g *Graph) checkAcyclic() error {
	// Kahn's algorithm over in-degrees.
	indeg := make([]int, len(g.nodes))
	for _, a := range g.arcs {
		indeg[a.To]++
	}
	var q []NodeID
	for i, d := range indeg {
		if d == 0 {
			q = append(q, NodeID(i))
		}
	}
	seen := 0
	for len(q) > 0 {
		id := q[0]
		q = q[1:]
		seen++
		for _, a := range g.nodes[id].Out {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				q = append(q, a.To)
			}
		}
	}
	if seen != len(g.nodes) {
		return fmt.Errorf("graph %s: cycle detected", g.name)
	}
	return nil
}

// TopoOrder returns the nodes in a topological order (sources first).
// Validate must have succeeded.
func (g *Graph) TopoOrder() []NodeID {
	indeg := make([]int, len(g.nodes))
	for _, a := range g.arcs {
		indeg[a.To]++
	}
	var q, out []NodeID
	for i, d := range indeg {
		if d == 0 {
			q = append(q, NodeID(i))
		}
	}
	for len(q) > 0 {
		id := q[0]
		q = q[1:]
		out = append(out, id)
		for _, a := range g.nodes[id].Out {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				q = append(q, a.To)
			}
		}
	}
	return out
}

// Components partitions the node ids into weakly-connected components — the
// paper's scheduling units. Components are returned in ascending order of
// their smallest node id.
func (g *Graph) Components() [][]NodeID {
	parent := make([]int, len(g.nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, a := range g.arcs {
		union(int(a.From), int(a.To))
	}
	byRoot := make(map[int][]NodeID)
	for i := range g.nodes {
		r := find(i)
		byRoot[r] = append(byRoot[r], NodeID(i))
	}
	var roots []int
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]NodeID, 0, len(byRoot))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// Dot renders the graph in Graphviz DOT format for inspection.
func (g *Graph) Dot() string { return g.DotAnnotated(nil) }

// DotAnnotated renders the graph in DOT format with an optional per-node
// annotation: when annot returns a non-empty string for a node, it is
// appended to the node's label on its own lines — the hook the live metrics
// overlay uses to stamp counters onto the picture.
func (g *Graph) DotAnnotated(annot func(*Node) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", g.name)
	for _, n := range g.nodes {
		shape := "box"
		switch {
		case n.IsSource():
			shape = "ellipse"
		case n.IsSink():
			shape = "doublecircle"
		}
		label := n.Op.Name()
		if annot != nil {
			if extra := annot(n); extra != "" {
				label += "\n" + extra
			}
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, label, shape)
	}
	for _, a := range g.arcs {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"port %d\"];\n", a.From, a.To, a.Port)
	}
	b.WriteString("}\n")
	return b.String()
}
