package graph

import (
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/tuple"
)

func passAll(*tuple.Tuple) bool { return true }

// buildUnionGraph assembles the paper's Figure-4 query: two sources, each
// through a selection, into a union, into a sink.
func buildUnionGraph(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := New("fig4")
	s1 := g.AddNode(ops.NewSource("src1", tuple.NewSchema("s1"), 0))
	s2 := g.AddNode(ops.NewSource("src2", tuple.NewSchema("s2"), 0))
	f1 := g.AddNode(ops.NewSelect("σ1", nil, passAll), s1)
	f2 := g.AddNode(ops.NewSelect("σ2", nil, passAll), s2)
	u := g.AddNode(ops.NewUnion("∪", nil, 2, ops.TSM), f1, f2)
	k := g.AddNode(ops.NewSink("sink", nil), u)
	return g, []NodeID{s1, s2, f1, f2, u, k}
}

func TestGraphStructure(t *testing.T) {
	g, ids := buildUnionGraph(t)
	if g.Len() != 6 || len(g.Arcs()) != 5 {
		t.Fatalf("nodes=%d arcs=%d", g.Len(), len(g.Arcs()))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	src := g.Sources()
	if len(src) != 2 || src[0] != ids[0] || src[1] != ids[1] {
		t.Errorf("Sources = %v", src)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0] != ids[5] {
		t.Errorf("Sinks = %v", sinks)
	}
	u := g.Node(ids[4])
	if len(u.In) != 2 || u.Preds[0] != ids[2] || u.Preds[1] != ids[3] {
		t.Errorf("union wiring: preds=%v", u.Preds)
	}
	if !g.Node(ids[0]).IsSource() || g.Node(ids[0]).Source() == nil {
		t.Error("source detection failed")
	}
	if g.Node(ids[4]).IsSource() || g.Node(ids[4]).Source() != nil {
		t.Error("union misdetected as source")
	}
	if !g.Node(ids[5]).IsSink() || g.Node(ids[4]).IsSink() {
		t.Error("sink detection failed")
	}
}

func TestAddNodePanics(t *testing.T) {
	g := New("bad")
	s := g.AddNode(ops.NewSource("s", tuple.NewSchema("s"), 0))
	for name, fn := range map[string]func(){
		"wrong arity": func() { g.AddNode(ops.NewUnion("u", nil, 2, ops.Basic), s) },
		"unknown pred": func() {
			g.AddNode(ops.NewSink("k", nil), NodeID(99))
		},
		"negative pred": func() {
			g.AddNode(ops.NewSink("k", nil), None)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestValidateFailures(t *testing.T) {
	empty := New("e")
	if err := empty.Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	noSource := New("ns")
	noSource.AddNode(ops.NewSource("s", tuple.NewSchema("s"), 0))
	// A graph whose only nodes are non-sources cannot be built through
	// AddNode without predecessors, so simulate a sourceless graph:
	ns2 := New("ns2")
	if err := ns2.Validate(); err == nil {
		t.Error("sourceless graph accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	g, _ := buildUnionGraph(t)
	order := g.TopoOrder()
	if len(order) != g.Len() {
		t.Fatalf("topo covers %d of %d", len(order), g.Len())
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %d->%d violates topo order", a.From, a.To)
		}
	}
}

func TestComponents(t *testing.T) {
	g, _ := buildUnionGraph(t)
	comps := g.Components()
	if len(comps) != 1 || len(comps[0]) != 6 {
		t.Fatalf("components = %v", comps)
	}
	// Add a disconnected second query.
	s3 := g.AddNode(ops.NewSource("src3", tuple.NewSchema("s3"), 0))
	g.AddNode(ops.NewSink("sink2", nil), s3)
	comps = g.Components()
	if len(comps) != 2 || len(comps[1]) != 2 {
		t.Fatalf("components after second query = %v", comps)
	}
}

func TestQueueGroupIncludesInboxes(t *testing.T) {
	g, ids := buildUnionGraph(t)
	grp := g.QueueGroup()
	src := g.Node(ids[0]).Source()
	src.Offer(tuple.NewData(1))
	if grp.Total() != 1 {
		t.Errorf("group must see inbox tuples, total = %d", grp.Total())
	}
	g.Node(ids[4]).In[0].Push(tuple.NewData(2))
	if grp.Total() != 2 {
		t.Errorf("group must see arc tuples, total = %d", grp.Total())
	}
}

func TestFanOut(t *testing.T) {
	g := New("fan")
	s := g.AddNode(ops.NewSource("s", tuple.NewSchema("s"), 0))
	k1 := g.AddNode(ops.NewSink("k1", nil), s)
	k2 := g.AddNode(ops.NewSink("k2", nil), s)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	sn := g.Node(s)
	if len(sn.Out) != 2 {
		t.Fatalf("fan-out arcs = %d", len(sn.Out))
	}
	if sn.Out[0].To != k1 || sn.Out[1].To != k2 {
		t.Errorf("fan-out targets wrong")
	}
}

func TestDot(t *testing.T) {
	g, _ := buildUnionGraph(t)
	dot := g.Dot()
	for _, frag := range []string{"digraph", "ellipse", "doublecircle", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("Dot missing %q:\n%s", frag, dot)
		}
	}
}
