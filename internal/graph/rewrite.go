package graph

import "repro/internal/ops"

// Rewriter incrementally builds a new graph from an existing one, carrying an
// old-id → new-id mapping so rewritten nodes can be wired to the images of
// their old predecessors. Rewrite passes (internal/partition) walk the source
// graph in topological order, Keep-ing nodes that pass through unchanged and
// Add-ing replacement subgraphs for nodes they expand; SetMap records which
// new node stands in for an old one so downstream consumers attach to it.
type Rewriter struct {
	src *Graph
	dst *Graph
	m   map[NodeID]NodeID // old id -> new id standing in for it
}

// NewRewriter starts a rewrite of src into a fresh graph with the given name.
func NewRewriter(src *Graph, name string) *Rewriter {
	return &Rewriter{src: src, dst: New(name), m: make(map[NodeID]NodeID)}
}

// Map returns the new id standing in for old, panicking if old has not been
// mapped yet — rewrites must proceed in topological order.
func (r *Rewriter) Map(old NodeID) NodeID {
	id, ok := r.m[old]
	if !ok {
		panic("graph: rewrite out of topological order: predecessor not mapped")
	}
	return id
}

// MappedPreds returns the images of old's predecessors, in port order.
func (r *Rewriter) MappedPreds(old NodeID) []NodeID {
	preds := r.src.Node(old).Preds
	out := make([]NodeID, len(preds))
	for i, p := range preds {
		out[i] = r.Map(p)
	}
	return out
}

// Keep copies old's operator into the new graph unchanged, wired to the
// images of its predecessors, and maps old to the copy. The operator instance
// is shared, not cloned — a rewrite consumes its source graph.
func (r *Rewriter) Keep(old NodeID) NodeID {
	n := r.src.Node(old)
	id := r.dst.AddNode(n.Op, r.MappedPreds(old)...)
	r.m[old] = id
	return id
}

// Add inserts a new node into the destination graph without mapping any old
// node to it (splitters, shards).
func (r *Rewriter) Add(op ops.Operator, preds ...NodeID) NodeID {
	return r.dst.AddNode(op, preds...)
}

// Graph returns the destination graph.
func (r *Rewriter) Graph() *Graph { return r.dst }

// SetMap records that new stands in for old: downstream consumers of old
// attach to new.
func (r *Rewriter) SetMap(old, new NodeID) { r.m[old] = new }
