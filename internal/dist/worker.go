package dist

import (
	"fmt"
	"sort"
	"sync"

	"repro/client"
	rt "repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/tuple"
)

// WorkerConfig configures one executor's plan-execution side.
type WorkerConfig struct {
	// Runtime is the options template for fragment engines. Shards is
	// ignored — the distributed path applies the partition rewrite itself
	// (to the full graph, before cutting), so fragment engines must never
	// re-shard.
	Runtime rt.Options
	// OnRow receives result rows of query sinks owned by this executor
	// (nil discards them).
	OnRow func(plan uint64, t *tuple.Tuple, now tuple.Time)
	// ClientName names this executor's outbound link connections in HELLO
	// frames (diagnostics).
	ClientName string
	// Client is the options template for outbound link connections.
	Client client.Options
	// Dial opens a link connection; defaults to client.Dial. A seam for
	// tests.
	Dial func(addr string, opts client.Options) (*client.Conn, error)
}

// Worker executes plan fragments on one node. It implements
// server.PlanHandler (the control plane: deploy/start/stop arrive as PLAN_*
// frames) and server.Backend (the data plane: it serves the link streams and
// owned original streams of every active deployment, falling back to a
// static backend for everything else). Both the coordinator and plain
// workers run one — executor 0's Worker is simply driven by a local
// Coordinator instead of a remote one.
type Worker struct {
	cfg      WorkerConfig
	fallback server.Backend

	mu   sync.Mutex
	deps map[uint64]*deployment
}

// deployment is one deployed plan fragment on this worker.
type deployment struct {
	spec    *Spec
	built   *Built
	eng     *rt.Engine // nil when the fragment is empty
	backend server.Backend
	conns   map[string]*client.Conn // outbound link connections by address
	started bool
}

// NewWorker returns a worker. fallback, which may be nil, serves stream
// names no active deployment owns.
func NewWorker(cfg WorkerConfig, fallback server.Backend) *Worker {
	if cfg.Dial == nil {
		cfg.Dial = client.Dial
	}
	return &Worker{cfg: cfg, fallback: fallback, deps: make(map[uint64]*deployment)}
}

// Open implements server.Backend: link streams and owned original streams
// of active deployments first (ascending plan id, so collisions resolve
// deterministically), then the fallback.
func (w *Worker) Open(name string) (*tuple.Schema, server.StreamSink, error) {
	w.mu.Lock()
	plans := make([]uint64, 0, len(w.deps))
	for p := range w.deps {
		plans = append(plans, p)
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i] < plans[j] })
	var backends []server.Backend
	for _, p := range plans {
		if d := w.deps[p]; d.backend != nil {
			backends = append(backends, d.backend)
		}
	}
	w.mu.Unlock()
	for _, b := range backends {
		if sch, sink, err := b.Open(name); err == nil {
			return sch, sink, nil
		}
	}
	if w.fallback != nil {
		return w.fallback.Open(name)
	}
	return nil, nil, fmt.Errorf("dist: no deployment serves stream %q", name)
}

// PlanDeploy implements server.PlanHandler: decode the spec, recompile the
// full graph, cut it, build this executor's fragment and its (not yet
// started) engine, and register the fragment's streams with the data plane.
func (w *Worker) PlanDeploy(plan uint64, specBytes []byte) error {
	spec, err := DecodeSpec(specBytes)
	if err != nil {
		return err
	}
	if spec.Plan != plan {
		return fmt.Errorf("dist: PLAN_DEPLOY frame for plan %d carries spec for plan %d", plan, spec.Plan)
	}
	onRow := func(t *tuple.Tuple, now tuple.Time) {
		if w.cfg.OnRow != nil {
			w.cfg.OnRow(plan, t, now)
		}
	}
	_, g, err := Compile(spec, onRow)
	if err != nil {
		return err
	}
	cut, err := MakeCut(g, spec)
	if err != nil {
		return err
	}
	if err := cut.Verify(g, spec); err != nil {
		return err
	}
	b, err := BuildFragment(g, cut, spec)
	if err != nil {
		return err
	}
	d := &deployment{spec: spec, built: b, conns: make(map[string]*client.Conn)}
	if b.Graph.Len() > 0 {
		opts := w.cfg.Runtime
		opts.Shards = 0 // the full graph was already rewritten before the cut
		eng, err := rt.New(b.Graph, opts)
		if err != nil {
			return fmt.Errorf("dist: plan %d: fragment engine: %w", plan, err)
		}
		d.eng = eng
		d.backend = server.NewEngineBackend(eng, b.LookupStream)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.deps[plan]; dup {
		return fmt.Errorf("dist: plan %d already deployed", plan)
	}
	w.deps[plan] = d
	return nil
}

// PlanStart implements server.PlanHandler: dial every egress target, bind
// the link streams, and only then start the fragment engine — nothing moves
// before the boundary is wired, so no tuple can reach an unbound egress.
// Incoming link traffic that lands before start buffers in source inboxes.
func (w *Worker) PlanStart(plan uint64) error {
	w.mu.Lock()
	d := w.deps[plan]
	w.mu.Unlock()
	if d == nil {
		return fmt.Errorf("dist: plan %d is not deployed", plan)
	}
	if d.started {
		return fmt.Errorf("dist: plan %d already started", plan)
	}
	if d.eng == nil {
		d.started = true // empty fragment: nothing to run
		return nil
	}
	for _, eb := range d.built.Egress {
		addr := d.spec.Workers[eb.Arc.ToExec]
		conn := d.conns[addr]
		if conn == nil {
			copts := w.cfg.Client
			if copts.Name == "" {
				copts.Name = fmt.Sprintf("%s/plan%d-exec%d", w.cfg.ClientName, plan, d.spec.Self)
			}
			var err error
			conn, err = w.cfg.Dial(addr, copts)
			if err != nil {
				w.teardownLinks(d)
				return fmt.Errorf("dist: plan %d: dial executor %d (%s): %w", plan, eb.Arc.ToExec, addr, err)
			}
			d.conns[addr] = conn
		}
		st, err := conn.Bind(eb.Arc.Name, tuple.External, client.StreamOptions{Delta: d.spec.LinkDelta})
		if err != nil {
			w.teardownLinks(d)
			return fmt.Errorf("dist: plan %d: bind link %q: %w", plan, eb.Arc.Name, err)
		}
		eb.Op.Bind(st)
	}
	d.eng.Start()
	d.started = true
	return nil
}

// PlanStop implements server.PlanHandler: abandon the deployment. Link
// connections close first — that unblocks any egress stuck in a
// credit-window Send — then the engine stops without draining.
func (w *Worker) PlanStop(plan uint64) error {
	w.mu.Lock()
	d := w.deps[plan]
	delete(w.deps, plan)
	w.mu.Unlock()
	if d == nil {
		return fmt.Errorf("dist: plan %d is not deployed", plan)
	}
	w.teardownLinks(d)
	if d.eng != nil {
		d.eng.Stop()
	}
	return nil
}

// teardownLinks closes a deployment's outbound connections.
func (w *Worker) teardownLinks(d *deployment) {
	for addr, conn := range d.conns {
		conn.Close()
		delete(d.conns, addr)
	}
}

// WaitPlan blocks until the plan's fragment drains naturally (every source
// — link or original — reached EOS), closes its link connections, and
// deregisters it. It returns the engine's failure, or the first egress
// transport error, if any.
func (w *Worker) WaitPlan(plan uint64) error {
	w.mu.Lock()
	d := w.deps[plan]
	w.mu.Unlock()
	if d == nil {
		return fmt.Errorf("dist: plan %d is not deployed", plan)
	}
	var err error
	if d.eng != nil {
		err = d.eng.Wait()
	}
	if err == nil {
		for _, eb := range d.built.Egress {
			if e := eb.Op.Err(); e != nil {
				err = e
				break
			}
		}
	}
	w.mu.Lock()
	delete(w.deps, plan)
	w.mu.Unlock()
	w.teardownLinks(d)
	return err
}

// Plans lists the active deployment ids, ascending.
func (w *Worker) Plans() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	plans := make([]uint64, 0, len(w.deps))
	for p := range w.deps {
		plans = append(plans, p)
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i] < plans[j] })
	return plans
}

// Engine exposes a deployment's fragment engine (nil when the fragment is
// empty or the plan unknown) — observability hooks read Snapshot through it.
func (w *Worker) Engine(plan uint64) *rt.Engine {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d := w.deps[plan]; d != nil {
		return d.eng
	}
	return nil
}

// Fragment exposes a deployment's built fragment (nil when unknown).
func (w *Worker) Fragment(plan uint64) *Built {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d := w.deps[plan]; d != nil {
		return d.built
	}
	return nil
}
