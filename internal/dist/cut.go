package dist

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tuple"
)

// Compile reproduces the spec's full query graph: parse and plan the script
// into a fresh engine, then apply the partition rewrite. Every executor runs
// this with identical inputs and — because node ids are assigned in
// deterministic insertion order and the rewrite walks a deterministic
// topological order — obtains an identical graph, which is what lets a
// placement vector computed on the coordinator address nodes on a worker.
// onRow receives result rows of every query whose sink this executor ends up
// owning (may be nil).
func Compile(spec *Spec, onRow func(t *tuple.Tuple, now tuple.Time)) (*core.Engine, *graph.Graph, error) {
	eng := core.NewEngine()
	if _, err := eng.ExecuteScript(spec.Script, onRow); err != nil {
		return nil, nil, fmt.Errorf("dist: plan %d: compile: %w", spec.Plan, err)
	}
	g, _ := partition.Rewrite(eng.Graph(), spec.Shards)
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dist: plan %d: %w", spec.Plan, err)
	}
	if len(spec.Placement) != g.Len() {
		return nil, nil, fmt.Errorf("dist: plan %d: placement covers %d nodes, graph has %d",
			spec.Plan, len(spec.Placement), g.Len())
	}
	return eng, g, nil
}

// CutArc is one graph arc severed by the placement: its endpoints run on
// different executors, so the arc becomes a named link stream served by the
// consumer's ingest server and fed by an Egress operator on the producer.
type CutArc struct {
	// Name is the link stream name, unique per plan and per cut arc.
	Name string
	// From/To/Port identify the severed arc in full-graph node ids.
	From graph.NodeID
	To   graph.NodeID
	Port int
	// FromExec/ToExec are the executors owning the producer and consumer.
	FromExec int
	ToExec   int
	// Schema is the stream schema of the link: the producer's output schema
	// re-kinded to external timestamps (the producer stamps upstream; the
	// link consumer must keep those stamps, and PUNCT admission requires an
	// external stream) and renamed to the link name.
	Schema *tuple.Schema
}

// Fragment is the slice of the full graph one executor runs: its owned
// nodes plus the cut arcs it terminates (ingress) and originates (egress).
type Fragment struct {
	// Exec is the executor index.
	Exec int
	// Nodes lists the owned full-graph node ids, ascending.
	Nodes []graph.NodeID
	// Ingress lists cut arcs whose consumer is owned (served as link
	// streams on this executor's ingest server).
	Ingress []*CutArc
	// Egress lists cut arcs whose producer is owned (dialed out to
	// ToExec's server at start).
	Egress []*CutArc
}

// Cut is a complete partitioning of a compiled graph across executors.
type Cut struct {
	// Frags holds one fragment per executor, indexed by executor number
	// (possibly empty for executors the placement never names).
	Frags []*Fragment
	// Arcs lists every severed arc, in full-graph arc order.
	Arcs []*CutArc
}

// linkName names a cut arc's stream: plan-scoped so concurrent deployments
// on one worker cannot collide, arc-scoped so reassembly is unambiguous.
func linkName(plan uint64, a *graph.Arc) string {
	return fmt.Sprintf("link:%d:%d-%d.%d", plan, a.From, a.To, a.Port)
}

// MakeCut severs g at every arc whose endpoints the placement assigns to
// different executors. The graph itself is not modified; fragments reference
// it by node id.
func MakeCut(g *graph.Graph, spec *Spec) (*Cut, error) {
	if len(spec.Placement) != g.Len() {
		return nil, fmt.Errorf("dist: plan %d: placement covers %d nodes, graph has %d",
			spec.Plan, len(spec.Placement), g.Len())
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	c := &Cut{Frags: make([]*Fragment, len(spec.Workers))}
	for i := range c.Frags {
		c.Frags[i] = &Fragment{Exec: i}
	}
	for _, n := range g.Nodes() {
		c.Frags[spec.Placement[n.ID]].Nodes = append(c.Frags[spec.Placement[n.ID]].Nodes, n.ID)
	}
	for _, a := range g.Arcs() {
		fe, te := int(spec.Placement[a.From]), int(spec.Placement[a.To])
		if fe == te {
			continue
		}
		sch := g.Node(a.From).Op.OutSchema()
		if sch == nil {
			return nil, fmt.Errorf("dist: plan %d: cut arc %d->%d has no schema (operator %q)",
				spec.Plan, a.From, a.To, g.Node(a.From).Op.Name())
		}
		link := sch.WithTS(tuple.External)
		link.Name = linkName(spec.Plan, a)
		ca := &CutArc{
			Name: link.Name, From: a.From, To: a.To, Port: a.Port,
			FromExec: fe, ToExec: te, Schema: link,
		}
		c.Arcs = append(c.Arcs, ca)
		c.Frags[fe].Egress = append(c.Frags[fe].Egress, ca)
		c.Frags[te].Ingress = append(c.Frags[te].Ingress, ca)
	}
	return c, nil
}

// Verify checks that the cut is a faithful partitioning of g — the
// reassembly property: every node in exactly one fragment, every arc either
// intact inside one fragment or severed into exactly one matching
// egress/ingress pair, schemas and timestamp-kind annotations preserved.
// The property test drives it over arbitrary placements; the worker runs it
// once per deploy as a cheap structural self-check.
func (c *Cut) Verify(g *graph.Graph, spec *Spec) error {
	owner := make(map[graph.NodeID]int, g.Len())
	for _, f := range c.Frags {
		for _, id := range f.Nodes {
			if prev, dup := owner[id]; dup {
				return fmt.Errorf("dist: node %d in fragments %d and %d", id, prev, f.Exec)
			}
			owner[id] = f.Exec
		}
	}
	if len(owner) != g.Len() {
		return fmt.Errorf("dist: fragments cover %d of %d nodes", len(owner), g.Len())
	}
	byName := make(map[string]*CutArc, len(c.Arcs))
	for _, ca := range c.Arcs {
		if _, dup := byName[ca.Name]; dup {
			return fmt.Errorf("dist: duplicate link %q", ca.Name)
		}
		byName[ca.Name] = ca
	}
	cut := 0
	for _, a := range g.Arcs() {
		fe, te := owner[a.From], owner[a.To]
		if fe == te {
			if _, severed := byName[linkName(spec.Plan, a)]; severed {
				return fmt.Errorf("dist: intact arc %d->%d listed as cut", a.From, a.To)
			}
			continue
		}
		cut++
		ca := byName[linkName(spec.Plan, a)]
		if ca == nil {
			return fmt.Errorf("dist: cut arc %d->%d has no link", a.From, a.To)
		}
		if ca.From != a.From || ca.To != a.To || ca.Port != a.Port || ca.FromExec != fe || ca.ToExec != te {
			return fmt.Errorf("dist: link %q does not match its arc", ca.Name)
		}
		want := g.Node(a.From).Op.OutSchema()
		if want == nil {
			return fmt.Errorf("dist: cut arc %d->%d lost its schema", a.From, a.To)
		}
		if len(ca.Schema.Fields) != len(want.Fields) {
			return fmt.Errorf("dist: link %q schema arity %d, want %d", ca.Name, len(ca.Schema.Fields), len(want.Fields))
		}
		for i, fd := range want.Fields {
			if ca.Schema.Fields[i].Kind != fd.Kind {
				return fmt.Errorf("dist: link %q field %d kind mismatch", ca.Name, i)
			}
		}
		if ca.Schema.TS != tuple.External {
			return fmt.Errorf("dist: link %q is not an external-timestamp stream", ca.Name)
		}
		if !containsArc(c.Frags[fe].Egress, ca) || !containsArc(c.Frags[te].Ingress, ca) {
			return fmt.Errorf("dist: link %q missing from its fragments", ca.Name)
		}
	}
	if cut != len(c.Arcs) {
		return fmt.Errorf("dist: %d links for %d cut arcs", len(c.Arcs), cut)
	}
	return nil
}

func containsArc(list []*CutArc, ca *CutArc) bool {
	for _, x := range list {
		if x == ca {
			return true
		}
	}
	return false
}

// Place fills spec.Placement with the canonical AutoPlace distribution,
// compiling the script once to discover the rewritten graph's shape. The
// coordinator calls it when the caller did not hand-place nodes.
func (s *Spec) Place() error {
	eng := core.NewEngine()
	if _, err := eng.ExecuteScript(s.Script, nil); err != nil {
		return fmt.Errorf("dist: plan %d: compile: %w", s.Plan, err)
	}
	g, plan := partition.Rewrite(eng.Graph(), s.Shards)
	s.Placement = AutoPlace(g, plan, len(s.Workers))
	return nil
}

// AutoPlace computes the canonical placement for spec.Workers executors
// over a compiled graph: everything runs on the coordinator (executor 0)
// except partitioned shard replicas, which round-robin across workers
// 1..N-1 — splitters and the min-watermark merge stay on the coordinator,
// so the links carry exactly the shard traffic. With one executor, or no
// partitioned operator, everything lands on executor 0 (a valid, if
// pointless, distribution). plan is the partition rewrite's output for the
// same graph (nil when nothing was partitioned).
func AutoPlace(g *graph.Graph, plan *partition.Plan, executors int) []int32 {
	placement := make([]int32, g.Len())
	if executors < 2 || plan == nil {
		return placement
	}
	for _, sh := range plan.Ops {
		for s, id := range sh.ShardIDs {
			placement[id] = int32(1 + s%(executors-1))
		}
	}
	return placement
}
