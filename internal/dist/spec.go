// Package dist implements distributed execution: plan shipping and
// cross-node query graphs over the wire protocol.
//
// The model is deliberately minimal. A deployment Spec carries the *compile
// inputs* — the CQL script, the partition factor, and a placement vector —
// not a serialized operator graph: every executor (the coordinator and each
// worker) recompiles the identical graph deterministically (AddNode assigns
// sequential ids, the partition rewrite walks a deterministic topological
// order), cuts it with the same placement, and instantiates only its own
// fragment. Shipping source code instead of object code keeps the codec
// trivially versionable and makes the cut property checkable: any cut of a
// planned DAG at arc boundaries reassembles into the original topology.
//
// Each cut arc becomes a *link*: a named stream (`link:<plan>:<from>-<to>.<port>`)
// served by the consuming executor's ordinary ingest server and fed by an
// Egress operator on the producing executor through an ordinary client
// connection. Everything the wire protocol already does for remote feeds —
// batching, credit-window flow control, punctuation transport, heartbeat
// skew estimation, demand propagation — applies to links unchanged, which
// is the whole point: the paper's external-timestamp rule (ETS = t + τ − δ
// under a measured skew bound) makes a network arc just another external
// stream whose bounds stay valid lower bounds.
package dist

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/tuple"
)

// SpecVersion is the plan-codec version byte. Decode rejects mismatches —
// a coordinator never deploys to a worker speaking another codec.
const SpecVersion = 1

// maxExecutors bounds the executor count a decoded spec may claim (a
// corrupted count must not allocate unbounded).
const maxExecutors = 1 << 10

// Spec describes one distributed deployment: the compile inputs every
// executor reproduces the full graph from, plus the placement that cuts it.
type Spec struct {
	// Plan is the coordinator-assigned deployment id; it scopes control
	// frames and names the link streams.
	Plan uint64
	// Script is the CQL compile input (CREATE STREAM and SELECT statements,
	// semicolon-separated) — identical on every executor.
	Script string
	// Shards is the partition.Rewrite factor applied after compilation
	// (< 2 leaves the graph unsharded). With N workers, Shards = N turns
	// the data-parallel rewrite into cross-machine sharding: hash splitters
	// feed per-worker links and the min-watermark merge spans the network.
	Shards int
	// Self is the recipient's executor index — the one field that differs
	// per deployed copy. Executor 0 is the coordinator by convention.
	Self int
	// Workers holds every executor's ingest-server address, indexed by
	// executor number (Workers[0] is the coordinator's own server, which
	// serves links flowing back to it).
	Workers []string
	// Placement maps every post-rewrite graph node id to the executor that
	// runs it. len(Placement) must equal the compiled graph's node count.
	Placement []int32
	// LinkDelta is the skew bound δ (µs) declared for link ingress sources.
	// Link punctuation is exact (the producer is in-system), so δ only
	// matters when a link stalls: the receiving engine's source-liveness
	// watchdog forces a skew-bounded ETS computed from it.
	LinkDelta tuple.Time
}

// Encode serializes the spec with the checkpoint-codec idiom: a version
// byte, then fields in declaration order. The encoding is canonical — equal
// specs encode to equal bytes — so the property test can require
// byte-identical round trips.
func (s *Spec) Encode() []byte {
	var e ckpt.Encoder
	e.U8(SpecVersion)
	e.U64(s.Plan)
	e.String(s.Script)
	e.Uvarint(uint64(s.Shards))
	e.Uvarint(uint64(s.Self))
	e.Uvarint(uint64(len(s.Workers)))
	for _, w := range s.Workers {
		e.String(w)
	}
	e.Uvarint(uint64(len(s.Placement)))
	for _, p := range s.Placement {
		e.Uvarint(uint64(p))
	}
	e.Time(s.LinkDelta)
	return e.Bytes()
}

// DecodeSpec parses an Encode payload, validating counts against the bytes
// actually present before allocating.
func DecodeSpec(b []byte) (*Spec, error) {
	d := ckpt.NewDecoder(b)
	if v := d.U8(); v != SpecVersion {
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dist: spec version %d, want %d", v, SpecVersion)
	}
	s := &Spec{
		Plan:   d.U64(),
		Script: d.String(),
		Shards: int(d.Uvarint()),
		Self:   int(d.Uvarint()),
	}
	nw := d.Uvarint()
	if d.Err() == nil && (nw > maxExecutors || nw > uint64(d.Remaining())) {
		return nil, fmt.Errorf("%w: %d executors", ckpt.ErrCorrupt, nw)
	}
	for i := uint64(0); i < nw && d.Err() == nil; i++ {
		s.Workers = append(s.Workers, d.String())
	}
	np := d.Uvarint()
	if d.Err() == nil && np > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: %d placements", ckpt.ErrCorrupt, np)
	}
	for i := uint64(0); i < np && d.Err() == nil; i++ {
		s.Placement = append(s.Placement, int32(d.Uvarint()))
	}
	s.LinkDelta = d.Time()
	if err := d.Done(); err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate checks the spec's internal consistency (graph-independent; the
// placement length is checked against the compiled graph in Compile).
func (s *Spec) validate() error {
	if len(s.Workers) == 0 {
		return fmt.Errorf("dist: plan %d: no executors", s.Plan)
	}
	if s.Self < 0 || s.Self >= len(s.Workers) {
		return fmt.Errorf("dist: plan %d: self %d out of range [0,%d)", s.Plan, s.Self, len(s.Workers))
	}
	for i, p := range s.Placement {
		if p < 0 || int(p) >= len(s.Workers) {
			return fmt.Errorf("dist: plan %d: node %d placed on executor %d of %d", s.Plan, i, p, len(s.Workers))
		}
	}
	return nil
}

// WithSelf returns a copy of s addressed to executor self — the per-worker
// variation the coordinator applies before encoding each deploy.
func (s *Spec) WithSelf(self int) *Spec {
	c := *s
	c.Self = self
	c.Workers = append([]string(nil), s.Workers...)
	c.Placement = append([]int32(nil), s.Placement...)
	return &c
}
