package dist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/tuple"
)

// distScript compiles to a graph with two partitionable IWP operators (a
// TSM union feeding a window equi-join), so the shard rewrite produces the
// splitter/shard/merge shape whose arc ordering the cut must preserve.
const distScript = `
	CREATE STREAM a (k int, v float);
	CREATE STREAM b (k int, w float);
	CREATE STREAM c (k int, v float);
	SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 2s;
	SELECT * FROM a UNION c WHERE v > 0.0;
`

func testSpec(workers, shards int) *Spec {
	ws := make([]string, workers)
	for i := range ws {
		ws[i] = fmt.Sprintf("127.0.0.1:%d", 7000+i)
	}
	return &Spec{
		Plan:      7,
		Script:    distScript,
		Shards:    shards,
		Workers:   ws,
		LinkDelta: 250_000,
	}
}

func TestSpecCodecRoundTripByteIdentical(t *testing.T) {
	specs := []*Spec{
		testSpec(1, 0),
		testSpec(3, 2),
		{Plan: 1, Script: "", Workers: []string{"x"}, Placement: []int32{0, 0, 0}},
		{Plan: 1 << 62, Script: strings.Repeat("s", 1000), Shards: 9, Self: 4,
			Workers: []string{"a", "b", "c", "d", "e"},
			Placement: []int32{4, 3, 2, 1, 0}, LinkDelta: tuple.Time(1) << 40},
	}
	for i, s := range specs {
		if len(s.Placement) == 0 {
			s.Placement = []int32{0}
		}
		b1 := s.Encode()
		dec, err := DecodeSpec(b1)
		if err != nil {
			t.Fatalf("spec %d: decode: %v", i, err)
		}
		b2 := dec.Encode()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("spec %d: round trip not byte-identical:\n%x\n%x", i, b1, b2)
		}
		if dec.Plan != s.Plan || dec.Script != s.Script || dec.Shards != s.Shards ||
			dec.Self != s.Self || dec.LinkDelta != s.LinkDelta {
			t.Fatalf("spec %d: fields mangled: %+v", i, dec)
		}
	}
}

func TestSpecDecodeRejectsHostilePayloads(t *testing.T) {
	good := testSpec(2, 2)
	good.Placement = []int32{0, 1}
	enc := good.Encode()
	cases := map[string][]byte{
		"empty":          {},
		"bad-version":    append([]byte{SpecVersion + 1}, enc[1:]...),
		"truncated":      enc[:len(enc)-1],
		"trailing":       append(append([]byte(nil), enc...), 0),
		"huge-workers":   hostileCount(t, 1<<20, false),
		"huge-placement": hostileCount(t, 1<<40, true),
	}
	for name, b := range cases {
		if _, err := DecodeSpec(b); err == nil {
			t.Errorf("%s: decode accepted hostile payload", name)
		}
	}
	// Structural validation after a clean parse.
	noWorkers := &Spec{Plan: 1, Placement: nil}
	noWorkers.Workers = nil
	if _, err := DecodeSpec(noWorkers.Encode()); err == nil {
		t.Error("no-workers spec accepted")
	}
	badPlace := testSpec(2, 0)
	badPlace.Placement = []int32{5}
	if _, err := DecodeSpec(badPlace.Encode()); err == nil {
		t.Error("out-of-range placement accepted")
	}
	badSelf := testSpec(2, 0)
	badSelf.Placement = []int32{0}
	badSelf.Self = 9
	if _, err := DecodeSpec(badSelf.Encode()); err == nil {
		t.Error("out-of-range self accepted")
	}
}

// hostileCount hand-builds a spec payload whose worker (or placement) count
// claims far more entries than the payload holds.
func hostileCount(t *testing.T, n uint64, placement bool) []byte {
	t.Helper()
	var e ckpt.Encoder
	e.U8(SpecVersion)
	e.U64(1)
	e.String("s")
	e.Uvarint(0) // shards
	e.Uvarint(0) // self
	if placement {
		e.Uvarint(1)
		e.String("w")
		e.Uvarint(n)
	} else {
		e.Uvarint(n)
	}
	return e.Bytes()
}

// lcg is a tiny deterministic generator for property-test placements.
type lcg uint64

func (r *lcg) next(n int) int {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int(uint64(*r>>33) % uint64(n))
}

// TestCutReassembly is the satellite property test: for any placement of a
// compiled (and shard-rewritten) graph, the cut plus the per-executor
// fragments reassemble into the original topology — same nodes, same arc
// order per producer (the splitter EmitTo invariant), same schemas and
// timestamp kinds — with every severed arc appearing as exactly one
// egress/ingress pair.
func TestCutReassembly(t *testing.T) {
	for _, shards := range []int{0, 2, 3} {
		spec := testSpec(3, shards)
		eng := newTestEngine(t, spec.Script)
		g, _ := partition.Rewrite(eng.Graph(), shards)
		placements := [][]int32{
			make([]int32, g.Len()), // everything on the coordinator
			alternate(g.Len(), 3),
		}
		r := lcg(uint64(shards) + 1)
		for i := 0; i < 25; i++ {
			p := make([]int32, g.Len())
			for j := range p {
				p[j] = int32(r.next(3))
			}
			placements = append(placements, p)
		}
		for pi, p := range placements {
			spec.Placement = p
			checkReassembly(t, g, spec, fmt.Sprintf("shards=%d placement=%d", shards, pi))
		}
	}
}

// newTestEngine compiles the script into a fresh core engine, the same way
// every executor does.
func newTestEngine(t *testing.T, script string) *core.Engine {
	t.Helper()
	eng := core.NewEngine()
	if _, err := eng.ExecuteScript(script, nil); err != nil {
		t.Fatal(err)
	}
	return eng
}

func alternate(n, execs int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i % execs)
	}
	return p
}

func checkReassembly(t *testing.T, g *graph.Graph, spec *Spec, label string) {
	t.Helper()
	cut, err := MakeCut(g, spec)
	if err != nil {
		t.Fatalf("%s: MakeCut: %v", label, err)
	}
	if err := cut.Verify(g, spec); err != nil {
		t.Fatalf("%s: Verify: %v", label, err)
	}
	owned := 0
	seenOps := make(map[ops.Operator]int)
	for exec := range spec.Workers {
		b, err := BuildFragment(g, cut, spec.WithSelf(exec))
		if err != nil {
			t.Fatalf("%s: BuildFragment(%d): %v", label, exec, err)
		}
		for full, fid := range b.NodeOf {
			owned++
			fn := b.Graph.Node(fid)
			gn := g.Node(full)
			if fn.Op != gn.Op {
				t.Fatalf("%s: exec %d node %d: operator identity lost", label, exec, full)
			}
			if prev, dup := seenOps[gn.Op]; dup {
				t.Fatalf("%s: operator of node %d in fragments %d and %d", label, full, prev, exec)
			}
			seenOps[gn.Op] = exec
			// Arc-order preservation: the fragment out-arcs of an owned
			// producer must line up index-for-index with the full graph's.
			if len(fn.Out) != len(gn.Out) {
				t.Fatalf("%s: exec %d node %d: %d out arcs, want %d",
					label, exec, full, len(fn.Out), len(gn.Out))
			}
			for i, fullArc := range gn.Out {
				fragTo := b.Graph.Node(fn.Out[i].To)
				if int(spec.Placement[fullArc.To]) == exec {
					if fn.Out[i].To != b.NodeOf[fullArc.To] || fn.Out[i].Port != fullArc.Port {
						t.Fatalf("%s: exec %d node %d out[%d]: wrong local consumer",
							label, exec, full, i)
					}
					continue
				}
				eg, ok := fragTo.Op.(*Egress)
				if !ok {
					t.Fatalf("%s: exec %d node %d out[%d]: cut arc not terminated by egress",
						label, exec, full, i)
				}
				wantName := "egress:" + linkName(spec.Plan, fullArc)
				if eg.Name() != wantName {
					t.Fatalf("%s: exec %d node %d out[%d]: egress %q, want %q",
						label, exec, full, i, eg.Name(), wantName)
				}
			}
			// Schema and timestamp-kind preservation for owned nodes.
			fs, gs := fn.Op.OutSchema(), gn.Op.OutSchema()
			if (fs == nil) != (gs == nil) || (fs != nil && fs.TS != gs.TS) {
				t.Fatalf("%s: exec %d node %d: schema kind changed", label, exec, full)
			}
		}
		// Every ingress link source carries the producer's fields re-kinded
		// to external timestamps.
		for name, src := range b.Links {
			var ca *CutArc
			for _, a := range cut.Arcs {
				if a.Name == name {
					ca = a
				}
			}
			if ca == nil {
				t.Fatalf("%s: exec %d: ingress %q not in cut", label, exec, name)
			}
			sch := src.OutSchema()
			if sch.TS != tuple.External {
				t.Fatalf("%s: ingress %q not external", label, name)
			}
			want := g.Node(ca.From).Op.OutSchema()
			if len(sch.Fields) != len(want.Fields) {
				t.Fatalf("%s: ingress %q arity %d, want %d", label, name, len(sch.Fields), len(want.Fields))
			}
			for i := range want.Fields {
				if sch.Fields[i].Kind != want.Fields[i].Kind {
					t.Fatalf("%s: ingress %q field %d kind changed", label, name, i)
				}
			}
		}
	}
	if owned != g.Len() {
		t.Fatalf("%s: fragments own %d of %d nodes", label, owned, g.Len())
	}
}

func TestAutoPlaceShardsRoundRobin(t *testing.T) {
	spec := testSpec(3, 2)
	eng := newTestEngine(t, spec.Script)
	g, plan := partition.Rewrite(eng.Graph(), spec.Shards)
	p := AutoPlace(g, plan, len(spec.Workers))
	if len(plan.Ops) == 0 {
		t.Fatal("script produced no partitioned operators")
	}
	workerNodes := 0
	for _, sh := range plan.Ops {
		for s, id := range sh.ShardIDs {
			want := int32(1 + s%2)
			if p[id] != want {
				t.Fatalf("shard %d of %s on executor %d, want %d", s, sh.Name, p[id], want)
			}
			workerNodes++
		}
		if p[sh.Merge] != 0 {
			t.Fatalf("merge of %s not on coordinator", sh.Name)
		}
		for _, sp := range sh.Splitters {
			if p[sp] != 0 {
				t.Fatalf("splitter of %s not on coordinator", sh.Name)
			}
		}
	}
	if workerNodes == 0 {
		t.Fatal("no shard nodes placed on workers")
	}
	spec.Placement = p
	checkReassembly(t, g, spec, "autoplace")
}
