package dist

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	rt "repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/tuple"
)

// e2eScript declares external-timestamp streams so the feed controls every
// timestamp — the output multiset is then identical however the work is
// spread across executors.
const e2eScript = `
	CREATE STREAM a (k int, v float) TIMESTAMP EXTERNAL SKEW 100ms;
	CREATE STREAM b (k int, w float) TIMESTAMP EXTERNAL SKEW 100ms;
	CREATE STREAM c (k int, v float) TIMESTAMP EXTERNAL SKEW 100ms;
	SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 2s;
	SELECT * FROM a UNION c WHERE v > 0.0;
`

const e2eTuples = 200

// e2eFeed produces the three input streams: left/right join twins with
// unique keys (left i matches exactly right i) plus a union side channel
// with half its rows filtered out.
func e2eFeed(n int) (a, b, c []*tuple.Tuple) {
	for i := 0; i < n; i++ {
		ts := tuple.Time(i * 1000)
		a = append(a, tuple.NewData(ts+500, tuple.Int(int64(i)), tuple.Float(float64(i)+0.5)))
		b = append(b, tuple.NewData(ts, tuple.Int(int64(i)), tuple.Float(float64(i)*2)))
		v := float64(i)
		if i%2 == 0 {
			v = -v - 1 // filtered by WHERE v > 0.0
		}
		c = append(c, tuple.NewData(ts+250, tuple.Int(int64(i)), tuple.Float(v)))
	}
	return
}

// rowKey renders a sink row so multisets compare across runs.
func rowKey(t *tuple.Tuple) string {
	s := fmt.Sprintf("ts=%d", t.Ts)
	for _, v := range t.Vals {
		s += "|" + v.String()
	}
	return s
}

// runSingleProcess executes the script in one sharded in-process engine and
// returns the sorted sink rows — the reference output.
func runSingleProcess(t *testing.T, shards int) []string {
	t.Helper()
	var mu sync.Mutex
	var rows []string
	eng := core.NewEngine()
	if _, err := eng.ExecuteScript(e2eScript, func(tp *tuple.Tuple, _ tuple.Time) {
		mu.Lock()
		rows = append(rows, rowKey(tp))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	re, err := eng.BuildRuntime(rt.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	re.Start()
	a, b, c := e2eFeed(e2eTuples)
	for name, batch := range map[string][]*tuple.Tuple{"a": a, "b": b, "c": c} {
		_, src, err := eng.LookupStream(name)
		if err != nil {
			t.Fatal(err)
		}
		re.IngestBatch(src, batch)
		re.CloseStream(src)
	}
	if err := re.Wait(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

// distCluster is a loopback deployment: one server+worker per executor.
type distCluster struct {
	workers []*Worker
	servers []*server.Server
	addrs   []string
	mu      sync.Mutex
	rows    []string
}

func newDistCluster(t *testing.T, execs int, wcfg WorkerConfig) *distCluster {
	t.Helper()
	dc := &distCluster{}
	for i := 0; i < execs; i++ {
		cfg := wcfg
		cfg.ClientName = fmt.Sprintf("exec%d", i)
		cfg.OnRow = func(_ uint64, tp *tuple.Tuple, _ tuple.Time) {
			dc.mu.Lock()
			dc.rows = append(dc.rows, rowKey(tp))
			dc.mu.Unlock()
		}
		w := NewWorker(cfg, nil)
		srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: w, Plans: w})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		dc.workers = append(dc.workers, w)
		dc.servers = append(dc.servers, srv)
		dc.addrs = append(dc.addrs, srv.Addr().String())
	}
	return dc
}

func (dc *distCluster) sortedRows() []string {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	rows := append([]string(nil), dc.rows...)
	sort.Strings(rows)
	return rows
}

// TestDistributedMatchesSingleProcess is the acceptance check: the same
// script, cut across three executors (coordinator + two workers holding the
// shards), produces exactly the single-process sink output.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	const shards = 2
	want := runSingleProcess(t, shards)
	if len(want) == 0 {
		t.Fatal("reference run produced no rows")
	}

	dc := newDistCluster(t, 3, WorkerConfig{})
	spec := &Spec{
		Plan:      1,
		Script:    e2eScript,
		Shards:    shards,
		Workers:   dc.addrs,
		LinkDelta: 100_000,
	}
	if err := spec.Place(); err != nil {
		t.Fatal(err)
	}
	used := map[int32]bool{}
	for _, p := range spec.Placement {
		used[p] = true
	}
	if len(used) < 3 {
		t.Fatalf("placement uses %d executors, want 3: %v", len(used), spec.Placement)
	}

	coord, err := Deploy(dc.workers[0], spec, client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Feed the original streams over the wire, like any external client.
	conn, err := client.Dial(dc.addrs[0], client.Options{Name: "feed"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	a, b, c := e2eFeed(e2eTuples)
	for name, batch := range map[string][]*tuple.Tuple{"a": a, "b": b, "c": c} {
		st, err := conn.Bind(name, tuple.External, client.StreamOptions{Delta: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range batch {
			if err := st.Send(tp); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.CloseSend(); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("distributed deployment did not drain")
	}
	// Remote fragments drained before the local sink did; reap them.
	for i := 1; i < len(dc.workers); i++ {
		if err := dc.workers[i].WaitPlan(spec.Plan); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	got := dc.sortedRows()
	if len(got) != len(want) {
		t.Fatalf("distributed rows = %d, single-process = %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: distributed %q, single-process %q", i, got[i], want[i])
		}
	}
}

// TestPlanStopAbandonsDeployment exercises the abandonment path: a started
// deployment with live links tears down cleanly on PLAN_STOP.
func TestPlanStopAbandonsDeployment(t *testing.T) {
	dc := newDistCluster(t, 2, WorkerConfig{})
	spec := &Spec{Plan: 9, Script: e2eScript, Shards: 2, Workers: dc.addrs, LinkDelta: 100_000}
	if err := spec.Place(); err != nil {
		t.Fatal(err)
	}
	coord, err := Deploy(dc.workers[0], spec, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord.Stop()
	if eng := dc.workers[0].Engine(spec.Plan); eng != nil {
		t.Fatal("stop left the local deployment registered")
	}
	if eng := dc.workers[1].Engine(spec.Plan); eng != nil {
		t.Fatal("stop left the remote deployment registered")
	}
}

// TestDeployRejectsBadSpec covers control-plane rejection: a worker acks a
// malformed deploy with an error and the coordinator aborts.
func TestDeployRejectsBadSpec(t *testing.T) {
	w := NewWorker(WorkerConfig{}, nil)
	if err := w.PlanDeploy(5, []byte{0xFF}); err == nil {
		t.Fatal("garbage spec accepted")
	}
	spec := testSpec(1, 0)
	spec.Placement = []int32{0}
	spec.Plan = 4
	if err := w.PlanDeploy(5, spec.Encode()); err == nil {
		t.Fatal("plan id mismatch accepted")
	}
	// Placement length must match the compiled graph.
	bad := &Spec{Plan: 5, Script: e2eScript, Workers: []string{"x"}, Placement: []int32{0}}
	if err := w.PlanDeploy(5, bad.Encode()); err == nil {
		t.Fatal("short placement accepted")
	}
}
