package dist

import (
	"fmt"

	"repro/client"
)

// Coordinator drives one distributed deployment from executor 0: it ships
// the spec to every remote executor over the control plane (PLAN_DEPLOY),
// deploys its own fragment through the local Worker directly, and releases
// execution everywhere (PLAN_START) only after every deploy acked — the
// two-phase handshake that guarantees every link's consuming server can
// resolve the link name before any producer dials it.
type Coordinator struct {
	spec  *Spec
	local *Worker
	conns []*client.Conn // control connections by executor index; [0] nil
}

// Deploy ships spec to every executor and starts the plan. local is this
// process's Worker (executor 0); copts configures the control connections.
// On any failure the deployment is rolled back everywhere it reached.
func Deploy(local *Worker, spec *Spec, copts client.Options) (*Coordinator, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{spec: spec, local: local, conns: make([]*client.Conn, len(spec.Workers))}
	dial := local.cfg.Dial
	fail := func(stage string, err error) (*Coordinator, error) {
		c.abort()
		return nil, fmt.Errorf("dist: plan %d: %s: %w", spec.Plan, stage, err)
	}
	for i := 1; i < len(spec.Workers); i++ {
		if copts.Name == "" {
			copts.Name = fmt.Sprintf("coordinator/plan%d", spec.Plan)
		}
		conn, err := dial(spec.Workers[i], copts)
		if err != nil {
			return fail(fmt.Sprintf("dial executor %d (%s)", i, spec.Workers[i]), err)
		}
		c.conns[i] = conn
		if err := conn.PlanDeploy(spec.Plan, spec.WithSelf(i).Encode()); err != nil {
			return fail(fmt.Sprintf("deploy to executor %d", i), err)
		}
	}
	if err := local.PlanDeploy(spec.Plan, spec.WithSelf(0).Encode()); err != nil {
		return fail("deploy locally", err)
	}
	// Every executor acked its deploy: all link names resolve everywhere.
	// Start remote fragments first, the local one (which owns the original
	// sources in the canonical placement) last.
	for i := 1; i < len(spec.Workers); i++ {
		if err := c.conns[i].PlanStart(spec.Plan); err != nil {
			return fail(fmt.Sprintf("start executor %d", i), err)
		}
	}
	if err := local.PlanStart(spec.Plan); err != nil {
		return fail("start locally", err)
	}
	return c, nil
}

// Wait blocks until the local fragment drains — with the sink on executor 0
// that is end-to-end completion: EOS cascades from the original sources
// through every link back into the local merge and sink. Control
// connections close afterwards (remote fragments have already drained
// themselves by the time the local one does).
func (c *Coordinator) Wait() error {
	err := c.local.WaitPlan(c.spec.Plan)
	c.closeConns()
	return err
}

// Stop abandons the deployment everywhere without draining.
func (c *Coordinator) Stop() {
	for i := 1; i < len(c.conns); i++ {
		if c.conns[i] != nil {
			c.conns[i].PlanStop(c.spec.Plan)
		}
	}
	c.local.PlanStop(c.spec.Plan)
	c.closeConns()
}

// abort rolls a half-finished Deploy back: stop whatever deployed, ignoring
// errors (an executor that never got the deploy rejects the stop).
func (c *Coordinator) abort() {
	for i := 1; i < len(c.conns); i++ {
		if c.conns[i] != nil {
			c.conns[i].PlanStop(c.spec.Plan)
		}
	}
	c.local.PlanStop(c.spec.Plan)
	c.closeConns()
}

func (c *Coordinator) closeConns() {
	for i, conn := range c.conns {
		if conn != nil {
			conn.Close()
			c.conns[i] = nil
		}
	}
}
