package dist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ops"
	"repro/internal/tuple"
)

// LinkSender is the transport half of an egress node: where its tuples go.
// client.Stream satisfies it directly. Send transfers tuple ownership to the
// sender; Punct conveys an ETS bound; CloseSend ends the link (the receiving
// server turns it into EOS on the remote ingress source).
type LinkSender interface {
	Send(t *tuple.Tuple) error
	Punct(ets tuple.Time) error
	CloseSend() error
}

// Egress is the producer-side boundary operator of a cut arc. It occupies
// the position of the remote consumer in the local fragment: it consumes the
// severed arc's traffic and forwards it over a LinkSender instead of a local
// buffer. ops.Sink cannot serve here — sinks eliminate punctuation, and a
// link must carry it (the remote ingress source's ETS progress *is* the
// forwarded punctuation).
//
// Egress is a terminal node (no output arcs), so the runtime retires its
// goroutine once all inputs hit EOS and drain — which means Exec must keep
// consuming even after a transport failure. After the first send error the
// operator swallows traffic locally (recording the error and a drop count)
// so the fragment still drains instead of wedging behind a dead link.
//
// The sender is installed at plan start, after deploy builds the fragment:
// Bind(nil→sender) flips an atomic, so installation needs no lock against a
// running engine. More is false while unbound — the node simply waits.
type Egress struct {
	name string
	// schema is the link schema (external-timestamp clone of the producer's
	// output schema).
	schema *tuple.Schema

	sender atomic.Pointer[senderBox]

	mu      sync.Mutex
	sendErr error

	sent    uint64
	puncts  uint64
	dropped uint64
	closed  bool
}

// senderBox wraps the interface so atomic.Pointer has a concrete type.
type senderBox struct{ s LinkSender }

// NewEgress returns an egress node for one cut arc.
func NewEgress(ca *CutArc) *Egress {
	return &Egress{name: "egress:" + ca.Name, schema: ca.Schema}
}

// Bind installs the transport. Call once, between deploy and start.
func (e *Egress) Bind(s LinkSender) { e.sender.Store(&senderBox{s: s}) }

// Err reports the first transport failure, if any.
func (e *Egress) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sendErr
}

// Stats reports tuples forwarded, punctuation forwarded, and tuples dropped
// after a transport failure.
func (e *Egress) Stats() (sent, puncts, dropped uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent, e.puncts, e.dropped
}

func (e *Egress) Name() string             { return e.name }
func (e *Egress) NumInputs() int           { return 1 }
func (e *Egress) OutSchema() *tuple.Schema { return e.schema }

// More reports progress is possible: input held and transport bound.
func (e *Egress) More(ctx *ops.Ctx) bool {
	return e.sender.Load() != nil && !ctx.Ins[0].Empty()
}

// BlockingInput points upstream when the input is empty.
func (e *Egress) BlockingInput(ctx *ops.Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

// Exec forwards one tuple over the link. Egress never yields locally.
func (e *Egress) Exec(ctx *ops.Ctx) bool {
	box := e.sender.Load()
	if box == nil {
		return false
	}
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	e.mu.Lock()
	dead := e.sendErr != nil
	e.mu.Unlock()
	if dead {
		e.mu.Lock()
		e.dropped++
		e.mu.Unlock()
		releaseTuple(ctx, t)
		return false
	}
	switch {
	case t.IsEOS():
		// A barrier may ride the EOS punctuation; report it locally before
		// the link closes.
		if t.Ckpt != 0 {
			reportBarrier(ctx, t.Ckpt, t.Ts)
		}
		err := box.s.CloseSend()
		e.fail(err)
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		releaseTuple(ctx, t)
	case t.IsPunct():
		// Checkpoint barriers are node-local: the egress aligns the local
		// snapshot cut (acting as this fragment's sink for the barrier) and
		// forwards a plain ETS punctuation — cross-node barrier coordination
		// is out of scope (DESIGN §15).
		if t.Ckpt != 0 {
			reportBarrier(ctx, t.Ckpt, t.Ts)
		}
		e.fail(box.s.Punct(t.Ts))
		e.mu.Lock()
		e.puncts++
		e.mu.Unlock()
		releaseTuple(ctx, t)
	default:
		// The sender takes ownership and recycles after the wire flush, but
		// this operator cannot prove it owns t exclusively — on a fan-out
		// graph the same pointer rides sibling arcs (possibly into another
		// egress). Ship a pooled copy; the original goes back through the
		// engine's release hook, which is only armed when ownership is
		// provable.
		cp := tuple.GetData(t.Ts, len(t.Vals))
		copy(cp.Vals, t.Vals)
		cp.Seq = t.Seq
		e.fail(box.s.Send(cp))
		e.mu.Lock()
		e.sent++
		e.mu.Unlock()
		releaseTuple(ctx, t)
	}
	return false
}

// releaseTuple recycles a consumed tuple when the engine granted ownership.
func releaseTuple(ctx *ops.Ctx, t *tuple.Tuple) {
	if ctx.Release != nil && t != nil {
		ctx.Release(t)
	}
}

// reportBarrier notifies the engine of a fully applied checkpoint barrier.
func reportBarrier(ctx *ops.Ctx, id uint64, bound tuple.Time) {
	if ctx.OnBarrier != nil {
		ctx.OnBarrier(id, bound)
	}
}

// fail records the first transport error.
func (e *Egress) fail(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.sendErr == nil {
		e.sendErr = fmt.Errorf("dist: %s: %w", e.name, err)
	}
	e.mu.Unlock()
}

func (e *Egress) String() string {
	sent, puncts, dropped := e.Stats()
	return fmt.Sprintf("%s (sent=%d puncts=%d dropped=%d)", e.name, sent, puncts, dropped)
}
