package dist

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// placementPalette colors executors in DOT renderings (cycled when a
// deployment has more executors than colors). Executor 0 — the coordinator —
// is deliberately the pale one, so worker fragments pop.
var placementPalette = []string{
	"#f0f0f0", // 0: coordinator
	"#a6cee3", "#b2df8a", "#fdbf6f", "#cab2d6",
	"#fb9a99", "#ffff99", "#1f78b4", "#33a02c",
}

// DotPlacement renders a compiled full graph with its placement overlay:
// nodes are filled per executor, intact arcs draw solid, and cut arcs —
// the network links — draw dashed with the carrying executors on the label.
// The output is ordinary Graphviz DOT, composable with `dot -Tpng`.
func DotPlacement(g *graph.Graph, placement []int32) (string, error) {
	if len(placement) != g.Len() {
		return "", fmt.Errorf("dist: placement covers %d nodes, graph has %d", len(placement), g.Len())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [style=filled];\n", g.Name())
	for _, n := range g.Nodes() {
		shape := "box"
		switch {
		case n.IsSource():
			shape = "ellipse"
		case n.IsSink():
			shape = "doublecircle"
		}
		exec := int(placement[n.ID])
		color := placementPalette[exec%len(placementPalette)]
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s fillcolor=%q];\n",
			n.ID, fmt.Sprintf("%s\nexec %d", n.Op.Name(), exec), shape, color)
	}
	for _, a := range g.Arcs() {
		fe, te := placement[a.From], placement[a.To]
		if fe == te {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"port %d\"];\n", a.From, a.To, a.Port)
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"port %d\\nlink %d->%d\" style=dashed color=\"#e31a1c\"];\n",
			a.From, a.To, a.Port, fe, te)
	}
	b.WriteString("}\n")
	return b.String(), nil
}
