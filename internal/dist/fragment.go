package dist

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// EgressBinding pairs an egress operator with the cut arc it serves, so the
// start phase can dial the consumer's server and bind the link stream.
type EgressBinding struct {
	Arc *CutArc
	Op  *Egress
}

// Built is one executor's runnable slice of a distributed plan: the fragment
// graph plus its network boundary.
type Built struct {
	// Graph is the fragment graph (possibly empty when the placement gives
	// this executor nothing).
	Graph *graph.Graph
	// Links maps link stream name to the ingress source that terminates it —
	// the executor's server serves these names to producing peers.
	Links map[string]*ops.Source
	// Egress lists the fragment's outbound boundary, in cut-arc order.
	Egress []*EgressBinding
	// Sources maps original (non-link) stream names owned by this fragment
	// to their source operators — the executor's server serves these to
	// external feeds.
	Sources map[string]*ops.Source
	// NodeOf maps full-graph node ids of owned nodes to fragment node ids,
	// for placement-aware diagnostics.
	NodeOf map[graph.NodeID]graph.NodeID
}

type arcKey struct {
	from graph.NodeID
	to   graph.NodeID
	port int
}

// BuildFragment instantiates executor spec.Self's fragment of the compiled
// graph g under the given cut. Operator instances are reused from g (they
// are freshly compiled in this process and appear in exactly one fragment);
// cut arcs become ingress sources on the consumer side and Egress operators
// on the producer side.
//
// Construction order is load-bearing: nodes are processed in ascending
// full-graph id, and a remote consumer's egress stand-in is attached to the
// local producer at the remote consumer's position. Because full-graph
// out-arc order is attachment order (ascending consumer id), every
// producer's fragment out-arcs line up index-for-index with its full-graph
// out-arcs — the invariant the partition splitter's EmitTo(shard, ·)
// routing depends on.
func BuildFragment(g *graph.Graph, c *Cut, spec *Spec) (*Built, error) {
	self := spec.Self
	cutBy := make(map[arcKey]*CutArc, len(c.Arcs))
	for _, ca := range c.Arcs {
		cutBy[arcKey{ca.From, ca.To, ca.Port}] = ca
	}
	b := &Built{
		Graph:   graph.New(fmt.Sprintf("%s@exec%d", g.Name(), self)),
		Links:   make(map[string]*ops.Source),
		Sources: make(map[string]*ops.Source),
		NodeOf:  make(map[graph.NodeID]graph.NodeID),
	}
	for _, n := range g.Nodes() {
		if int(spec.Placement[n.ID]) == self {
			preds := make([]graph.NodeID, 0, len(n.Preds))
			for port, p := range n.Preds {
				if int(spec.Placement[p]) == self {
					preds = append(preds, b.NodeOf[p])
					continue
				}
				ca := cutBy[arcKey{p, n.ID, port}]
				if ca == nil {
					return nil, fmt.Errorf("dist: plan %d: arc %d->%d.%d crosses executors but is not cut",
						spec.Plan, p, n.ID, port)
				}
				src := ops.NewSource(ca.Name, ca.Schema, spec.LinkDelta)
				preds = append(preds, b.Graph.AddNode(src))
				b.Links[ca.Name] = src
			}
			b.NodeOf[n.ID] = b.Graph.AddNode(n.Op, preds...)
			if s := n.Source(); s != nil {
				b.Sources[s.Name()] = s
			}
			continue
		}
		// Remote consumer: stand in with an egress at each severed arc from
		// a local producer, at this consumer's id position.
		for port, p := range n.Preds {
			if int(spec.Placement[p]) != self {
				continue
			}
			ca := cutBy[arcKey{p, n.ID, port}]
			if ca == nil {
				return nil, fmt.Errorf("dist: plan %d: arc %d->%d.%d crosses executors but is not cut",
					spec.Plan, p, n.ID, port)
			}
			eg := NewEgress(ca)
			b.Graph.AddNode(eg, b.NodeOf[p])
			b.Egress = append(b.Egress, &EgressBinding{Arc: ca, Op: eg})
		}
	}
	if b.Graph.Len() > 0 {
		if err := b.Graph.Validate(); err != nil {
			return nil, fmt.Errorf("dist: plan %d: fragment %d: %w", spec.Plan, self, err)
		}
	}
	return b, nil
}

// LookupStream resolves a stream name served by this fragment — a link
// ingress or an owned original source — mirroring core.Engine.LookupStream
// for the executor's ingest server.
func (b *Built) LookupStream(name string) (*tuple.Schema, *ops.Source, error) {
	if s, ok := b.Links[name]; ok {
		return s.OutSchema(), s, nil
	}
	if s, ok := b.Sources[name]; ok {
		return s.OutSchema(), s, nil
	}
	return nil, nil, fmt.Errorf("dist: no stream %q in this fragment", name)
}
