// Benchmarks regenerating the paper's evaluation (one benchmark per table
// and figure; see DESIGN.md §3 for the experiment index) plus
// micro-benchmarks of the substrates. The figure benchmarks report the
// metric the paper plots (latency in ms, peak queue in tuples, idle-waiting
// in percent) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers alongside the usual ns/op.
package streammill_test

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/cql"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tuple"
	"repro/internal/window"
)

// benchConfig trims the paper's setup for benchmark iterations while keeping
// enough sparse-stream arrivals for stable results.
func benchConfig(s experiments.Scenario) experiments.Config {
	cfg := experiments.Default(s)
	cfg.Horizon = 300 * tuple.Second
	cfg.Warmup = 50 * tuple.Second
	return cfg
}

// BenchmarkFigure7 regenerates Figure 7 (average output latency) per
// scenario; the "latency_ms" metric is the figure's Y value.
func BenchmarkFigure7(b *testing.B) {
	cases := []struct {
		name string
		cfg  experiments.Config
	}{
		{"A_noETS", benchConfig(experiments.ScenarioA)},
		{"B_periodic10", func() experiments.Config {
			c := benchConfig(experiments.ScenarioB)
			c.HeartbeatRate = 10
			return c
		}()},
		{"B_periodic100", func() experiments.Config {
			c := benchConfig(experiments.ScenarioB)
			c.HeartbeatRate = 100
			return c
		}()},
		{"C_onDemand", benchConfig(experiments.ScenarioC)},
		{"D_latent", benchConfig(experiments.ScenarioD)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				last = experiments.Run(c.cfg)
			}
			b.ReportMetric(last.MeanLatency.Millis(), "latency_ms")
		})
	}
}

// BenchmarkFigure8 regenerates Figure 8 (peak total queue size).
func BenchmarkFigure8(b *testing.B) {
	cases := []struct {
		name string
		cfg  experiments.Config
	}{
		{"A_noETS", benchConfig(experiments.ScenarioA)},
		{"B_periodic1", func() experiments.Config {
			c := benchConfig(experiments.ScenarioB)
			c.HeartbeatRate = 1
			return c
		}()},
		{"B_periodic1000", func() experiments.Config {
			c := benchConfig(experiments.ScenarioB)
			c.HeartbeatRate = 1000
			return c
		}()},
		{"C_onDemand", benchConfig(experiments.ScenarioC)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				last = experiments.Run(c.cfg)
			}
			b.ReportMetric(float64(last.PeakQueue), "peak_tuples")
		})
	}
}

// BenchmarkIdleWaiting regenerates the §6 idle-waiting table.
func BenchmarkIdleWaiting(b *testing.B) {
	cases := []struct {
		name string
		cfg  experiments.Config
	}{
		{"A_noETS", benchConfig(experiments.ScenarioA)},
		{"B_periodic100", func() experiments.Config {
			c := benchConfig(experiments.ScenarioB)
			c.HeartbeatRate = 100
			return c
		}()},
		{"C_onDemand", benchConfig(experiments.ScenarioC)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				last = experiments.Run(c.cfg)
			}
			b.ReportMetric(last.IdleFraction*100, "idle_pct")
		})
	}
}

// BenchmarkSimultaneous regenerates the §4.1 simultaneous-tuples comparison
// (E6): Figure-1 rules vs TSM registers under coarse timestamps.
func BenchmarkSimultaneous(b *testing.B) {
	coarse := func(basic bool) experiments.Config {
		c := benchConfig(experiments.ScenarioC)
		c.External = true
		c.CoarseTs = 100 * tuple.Millisecond
		c.Delta = 100 * tuple.Millisecond
		c.Rate2 = 5
		c.BasicIWP = basic
		return c
	}
	for _, bc := range []struct {
		name  string
		basic bool
	}{{"BasicRules", true}, {"TSMRules", false}} {
		b.Run(bc.name, func(b *testing.B) {
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				last = experiments.Run(coarse(bc.basic))
			}
			b.ReportMetric(last.MeanLatency.Millis(), "latency_ms")
		})
	}
}

// BenchmarkJoinQuery regenerates E7: the window-join variant.
func BenchmarkJoinQuery(b *testing.B) {
	for _, s := range []experiments.Scenario{experiments.ScenarioA, experiments.ScenarioC} {
		b.Run(s.String(), func(b *testing.B) {
			cfg := benchConfig(s)
			cfg.Query = experiments.JoinQuery
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				last = experiments.Run(cfg)
			}
			b.ReportMetric(last.MeanLatency.Millis(), "latency_ms")
			b.ReportMetric(float64(last.PeakQueue), "peak_tuples")
		})
	}
}

// BenchmarkExternalSkew regenerates E8: external timestamps with skew δ.
func BenchmarkExternalSkew(b *testing.B) {
	for _, dm := range []int64{0, 50, 500} {
		b.Run(fmt.Sprintf("delta%dms", dm), func(b *testing.B) {
			cfg := benchConfig(experiments.ScenarioC)
			cfg.External = true
			cfg.Delta = tuple.Time(dm) * tuple.Millisecond
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				last = experiments.Run(cfg)
			}
			b.ReportMetric(last.MeanLatency.Millis(), "latency_ms")
		})
	}
}

// BenchmarkAblations covers AB1 (backtrack target), AB3 (scheduling) and
// AB4 (cost sensitivity); AB2/AB5 run via cmd/etsbench.
func BenchmarkAblations(b *testing.B) {
	mods := []struct {
		name string
		mod  func(*experiments.Config)
	}{
		{"BlockingInputBacktrack", func(*experiments.Config) {}},
		{"FirstPredBacktrack", func(c *experiments.Config) { c.BacktrackFirstPred = true }},
		{"RoundRobinSched", func(c *experiments.Config) { c.Strategy = exec.RoundRobin }},
		{"Cost5us", func(c *experiments.Config) { c.CostPerStep = 5 }},
		{"Cost80us", func(c *experiments.Config) { c.CostPerStep = 80 }},
	}
	for _, m := range mods {
		b.Run(m.name, func(b *testing.B) {
			cfg := benchConfig(experiments.ScenarioC)
			m.mod(&cfg)
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				last = experiments.Run(cfg)
			}
			b.ReportMetric(last.MeanLatency.Millis(), "latency_ms")
		})
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkBufferPushPop measures the arc buffer.
func BenchmarkBufferPushPop(b *testing.B) {
	q := buffer.New("bench")
	t := tuple.NewData(1, tuple.Int(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(t)
		q.Pop()
	}
}

// BenchmarkWindowInsert measures window maintenance with expiration.
func BenchmarkWindowInsert(b *testing.B) {
	w := window.NewStore(window.TimeWindow(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Insert(tuple.NewData(tuple.Time(i)))
	}
}

// BenchmarkUnionMerge measures the TSM union's per-tuple cost through the
// DFS engine on a pre-filled graph.
func BenchmarkUnionMerge(b *testing.B) {
	g := graph.New("bench")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	c := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, c)
	g.AddNode(ops.NewSink("k", nil), u)
	clock := tuple.Time(0)
	e := exec.MustNew(g, nil, func() tuple.Time { return clock })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock++
		s1.Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
		s2.Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
		e.Run(64)
	}
}

// BenchmarkJoinProbe measures the window join's per-tuple cost.
func BenchmarkJoinProbe(b *testing.B) {
	g := graph.New("bench")
	sch := tuple.NewSchema("s", tuple.Field{Name: "k", Kind: tuple.IntKind})
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	c := g.AddNode(s2)
	j := g.AddNode(ops.NewWindowJoin("j", nil, window.RowWindow(64), ops.EquiJoin(0, 0), ops.TSM), a, c)
	g.AddNode(ops.NewSink("k", nil), j)
	clock := tuple.Time(0)
	e := exec.MustNew(g, nil, func() tuple.Time { return clock })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock++
		s1.Ingest(tuple.NewData(0, tuple.Int(int64(i%128))), clock)
		s2.Ingest(tuple.NewData(0, tuple.Int(int64(i%128))), clock)
		e.Run(256)
	}
}

// BenchmarkJoinHashVsNestedLoop compares equi-join probe strategies at a
// window size where scans hurt (row window of 512, 64 distinct keys).
func BenchmarkJoinHashVsNestedLoop(b *testing.B) {
	build := func(hashed bool) (*exec.Engine, *ops.Source, *ops.Source, *tuple.Time) {
		g := graph.New("bench")
		sch := tuple.NewSchema("s", tuple.Field{Name: "k", Kind: tuple.IntKind})
		s1 := ops.NewSource("s1", sch, 0)
		s2 := ops.NewSource("s2", sch, 0)
		a := g.AddNode(s1)
		c := g.AddNode(s2)
		var j ops.Operator
		if hashed {
			j = ops.NewHashWindowJoin("j", nil, window.RowWindow(512), window.RowWindow(512), 0, 0, ops.TSM)
		} else {
			j = ops.NewWindowJoin("j", nil, window.RowWindow(512), ops.EquiJoin(0, 0), ops.TSM)
		}
		jn := g.AddNode(j, a, c)
		g.AddNode(ops.NewSink("k", nil), jn)
		clock := new(tuple.Time)
		e := exec.MustNew(g, nil, func() tuple.Time { return *clock })
		return e, s1, s2, clock
	}
	for _, hashed := range []bool{false, true} {
		name := "NestedLoop"
		if hashed {
			name = "Hash"
		}
		b.Run(name, func(b *testing.B) {
			e, s1, s2, clock := build(hashed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				*clock++
				s1.Ingest(tuple.NewData(0, tuple.Int(int64(i%64))), *clock)
				s2.Ingest(tuple.NewData(0, tuple.Int(int64((i+32)%64))), *clock)
				e.Run(256)
			}
		})
	}
}

// BenchmarkCQLParse measures statement parsing.
func BenchmarkCQLParse(b *testing.B) {
	q := "SELECT loc, avg(temp) AS t, count(*) FROM sensors WHERE temp > 30.0 AND loc != 'x' GROUP BY loc WINDOW 10s"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// buildRuntimeUnion assembles the union workload for the runtime throughput
// benchmarks: two sources merging into a TSM union feeding a sink.
func buildRuntimeUnion(b *testing.B, opts runtime.Options) (*runtime.Engine, *ops.Source, *ops.Source) {
	b.Helper()
	g := graph.New("bench")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	c := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, c)
	g.AddNode(ops.NewSink("k", nil), u)
	e, err := runtime.New(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	return e, s1, s2
}

// BenchmarkRuntimeThroughput measures the concurrent engine end to end:
// PerTuple is the unbatched baseline (BatchSize 1, one channel send and one
// heap tuple per arc hop); Batched64 is the pooled, micro-batched data plane
// at the default batch size.
func BenchmarkRuntimeThroughput(b *testing.B) {
	b.Run("PerTuple", func(b *testing.B) {
		e, s1, s2 := buildRuntimeUnion(b, runtime.Options{
			OnDemandETS: true, ChannelDepth: 1024, BatchSize: 1,
		})
		e.Start()
		t := tuple.NewData(0, tuple.Int(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Ingest(s1, t.Clone())
			e.Ingest(s2, t.Clone())
		}
		e.CloseStream(s1)
		e.CloseStream(s2)
		e.Wait()
	})
	b.Run("Batched64", func(b *testing.B) {
		e, s1, s2 := buildRuntimeUnion(b, runtime.Options{
			OnDemandETS: true, ChannelDepth: 1024, BatchSize: 64, Recycle: true,
		})
		e.Start()
		const span = 64
		var mag tuple.Magazine
		raws := make([]*tuple.Tuple, 0, span)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += span {
			n := span
			if rem := b.N - i; rem < n {
				n = rem
			}
			raws = raws[:0]
			for j := 0; j < n; j++ {
				t := mag.Get()
				t.Vals = append(t.Vals, tuple.Int(1))
				raws = append(raws, t)
			}
			e.IngestBatch(s1, raws)
			raws = raws[:0]
			for j := 0; j < n; j++ {
				t := mag.Get()
				t.Vals = append(t.Vals, tuple.Int(1))
				raws = append(raws, t)
			}
			e.IngestBatch(s2, raws)
		}
		e.CloseStream(s1)
		e.CloseStream(s2)
		e.Wait()
	})
}

// BenchmarkQueueBatchOps compares per-tuple Push/Pop against the batched
// PushAll/PopAll path the runtime's arc delivery uses.
func BenchmarkQueueBatchOps(b *testing.B) {
	const span = 64
	batch := make([]*tuple.Tuple, span)
	for i := range batch {
		batch[i] = tuple.NewData(tuple.Time(i))
	}
	b.Run("PushPop", func(b *testing.B) {
		q := buffer.New("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Push(batch[i%span])
			q.Pop()
		}
	})
	b.Run("PushAllPopAll", func(b *testing.B) {
		q := buffer.New("bench")
		dst := make([]*tuple.Tuple, 0, span)
		b.ResetTimer()
		for i := 0; i < b.N; i += span {
			q.PushAll(batch)
			dst = q.PopAll(dst[:0])
		}
	})
}

// BenchmarkGroupObserve measures the Figure-8 sampling cost, which the
// single-threaded engine pays on every execution step. The incremental
// running total makes it O(1) in the number of arcs.
func BenchmarkGroupObserve(b *testing.B) {
	for _, arcs := range []int{4, 64} {
		b.Run(fmt.Sprintf("arcs%d", arcs), func(b *testing.B) {
			g := buffer.NewGroup()
			for i := 0; i < arcs; i++ {
				q := buffer.New(fmt.Sprintf("q%d", i))
				q.Push(tuple.NewData(1))
				g.Add(q)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Observe()
			}
		})
	}
}
