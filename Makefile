GO ?= go

.PHONY: all build vet test race bench bench-runtime bench-shard obs-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check everything: the partition rewrite touches the runtime, the
# operators, and the metrics counters, so the whole tree runs under -race.
race:
	$(GO) test -race ./...

# Smoke-run every benchmark once so bit-rot in bench code is caught by CI.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full batched-vs-per-tuple measurement; writes BENCH_runtime.json.
bench-runtime:
	$(GO) run ./cmd/etsbench -runtime

# Partition-rewrite shard sweep (1/2/4/8) on the union+join workload;
# writes BENCH_shard.json.
bench-shard:
	$(GO) run ./cmd/etsbench -shards

# End-to-end observability check: streamd with the live metrics endpoint,
# one scrape, required metric families present (scripts/obs_smoke.sh).
obs-smoke:
	sh scripts/obs_smoke.sh

check: vet build test race bench obs-smoke
