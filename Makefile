GO ?= go

.PHONY: all build vet test race bench bench-runtime bench-shard bench-net bench-dist bench-columnar bench-adaptive bench-obs bench-ckpt obs-smoke net-smoke col-smoke adapt-smoke dist-smoke chaos ckpt-smoke fuzz-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check everything: the partition rewrite touches the runtime, the
# operators, and the metrics counters, so the whole tree runs under -race.
race:
	$(GO) test -race ./...

# Smoke-run every benchmark once so bit-rot in bench code is caught by CI.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full batched-vs-per-tuple measurement; writes BENCH_runtime.json.
bench-runtime:
	$(GO) run ./cmd/etsbench -runtime

# Partition-rewrite shard sweep (1/2/4/8) on the union+join workload;
# writes BENCH_shard.json.
bench-shard:
	$(GO) run ./cmd/etsbench -shards

# Loopback wire-ingest measurement (remote vs in-process end-to-end latency)
# plus the kill-the-client watchdog check; writes BENCH_net.json.
bench-net:
	$(GO) run ./cmd/etsbench -net

# Distributed-cut measurement: the sharded join once in a single process and
# once cut across a coordinator plus two loopback workers; writes
# BENCH_dist.json and exits non-zero if the result counts diverge.
bench-dist:
	$(GO) run ./cmd/etsbench -dist

# Row-vs-columnar data-plane measurement on the filter/project/hash and
# filter/join/aggregate pipelines; writes BENCH_columnar.json.
bench-columnar:
	$(GO) run ./cmd/etsbench -columnar

# Punctuation-tracing overhead measurement (span collector on vs off on
# the batched union workload); writes BENCH_obs.json and warns if the
# overhead exceeds the 5% budget.
bench-obs:
	$(GO) run ./cmd/etsbench -obs

# Adaptive-controller measurement: static sweep vs self-tuning on the
# drifting-skew union+join workload plus the probe-reorder sub-benchmark;
# writes BENCH_adaptive.json and exits non-zero if any acceptance gate
# (exact join rows, zero late, ≥1.3× static-default, ≥0.85× best static,
# ≥1 applied rebalance, ≥1 probe reorder) fails.
bench-adaptive:
	$(GO) run ./cmd/etsbench -adaptive

# Checkpoint measurement: the kill-restore-verify crash drill, then the
# steady-state overhead of barrier-aligned checkpointing (no coordinator vs
# a 200ms cadence) on the union+aggregate workload; writes BENCH_ckpt.json
# and exits non-zero if the drill fails or overhead exceeds the 5% budget.
bench-ckpt:
	$(GO) run ./cmd/etsbench -ckpt

# Kill-restore-verify crash drill under the race detector: a checkpointed
# run killed without drain, restored from the latest snapshot, watermark
# replay from the sources' retained feeds, exact-output comparison.
ckpt-smoke:
	$(GO) test -race ./internal/ckpt
	$(GO) run -race ./cmd/etsbench -ckpt-verify

# Columnar data-plane tests under the race detector: converters and the
# punctuation-order property (tuple), row/col operator equivalence (ops),
# end-to-end engine equivalence and mixed/fan-out arcs (runtime), the
# TUPLES_COL frame (wire), and client/server capability interop.
col-smoke:
	$(GO) test -race -run 'Col|Columnar' ./internal/tuple ./internal/ops ./internal/runtime ./internal/wire ./internal/server ./client

# End-to-end observability check (scripts/obs_smoke.sh): phase 1 scrapes a
# live streamd and asserts the required metric families; phase 2 runs a
# networked streamd with tracing, feeds it the netmon workload, and asserts
# a complete punctuation timeline in /spans, the health/pprof endpoints,
# one streamtop render, and a non-empty span log on shutdown.
obs-smoke:
	sh scripts/obs_smoke.sh

# Networked-ingestion loopback round trip under -race: the netmon example's
# client/server path, then a scaled-down etsbench -net with the
# kill-the-client check (scripts/net_smoke.sh).
net-smoke:
	sh scripts/net_smoke.sh

# Distributed-execution smoke under the race detector: the dist package's
# property and end-to-end tests, then scripts/dist_smoke.sh — the distquery
# stalled-link drill (worker watchdogs must force ETS into a quiet network
# link), a scaled-down etsbench -dist with the exact-output check, and a
# real streamd coordinator + 2 workers fed over the wire with a clean
# SIGINT drain.
dist-smoke:
	$(GO) test -race ./internal/dist
	sh scripts/dist_smoke.sh

# Adaptive-controller smoke under the race detector: the controller unit
# tests (batch climb, barrier rebalance, probe reorder, the reconfig-at-
# boundary property), then a short self-tuning run that must issue and
# apply at least one retune at a punctuation boundary with the join exact
# and zero late deliveries.
adapt-smoke:
	$(GO) test -race ./internal/adapt ./internal/runtime ./internal/partition
	$(GO) run -race ./cmd/etsbench -adaptive-smoke

# Seeded chaos soak under the race detector: node panics, 1% source drops,
# and a mid-run source stall on the union workload; exits non-zero if any
# fault-tolerance invariant (clean finish, exact tuple accounting,
# watchdog-forced ETS, watermark-ordered output) is violated.
chaos:
	$(GO) run -race ./cmd/etsbench -chaos -chaos-duration 2s

# Short coverage-guided fuzz of the CQL parser, the wire-protocol frame
# decoder, the row↔columnar converters, and the operator-state checkpoint
# codecs (panic/hang/losslessness on arbitrary input).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s -run '^$$' ./internal/cql
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s -run '^$$' ./internal/wire
	$(GO) test -fuzz=FuzzColBatchRoundTrip -fuzztime=30s -run '^$$' ./internal/tuple
	$(GO) test -fuzz=FuzzStateRoundTrip -fuzztime=30s -run '^$$' ./internal/ops

check: vet build test race bench obs-smoke net-smoke col-smoke adapt-smoke dist-smoke chaos ckpt-smoke
