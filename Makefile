GO ?= go

.PHONY: all build vet test race bench bench-runtime check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (the runtime's batched data plane and
# the buffers under it).
race:
	$(GO) test -race ./internal/runtime/... ./internal/buffer/... ./internal/tuple/...

# Smoke-run every benchmark once so bit-rot in bench code is caught by CI.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full batched-vs-per-tuple measurement; writes BENCH_runtime.json.
bench-runtime:
	$(GO) run ./cmd/etsbench -runtime

check: vet build test race bench
